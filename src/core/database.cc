#include "core/database.h"

#include <algorithm>
#include <optional>

#include "core/magic.h"
#include "core/typecheck.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace logres {

namespace {

// Rules compare by their printed form (used by the RDD* modes).
bool SameRule(const Rule& a, const Rule& b) {
  return a.ToString() == b.ToString();
}

std::vector<Rule> SubtractRules(const std::vector<Rule>& base,
                                const std::vector<Rule>& removed) {
  std::vector<Rule> out;
  for (const Rule& rule : base) {
    bool drop = std::any_of(
        removed.begin(), removed.end(),
        [&](const Rule& r) { return SameRule(rule, r); });
    if (!drop) out.push_back(rule);
  }
  return out;
}

std::vector<FunctionDecl> MergeFunctions(
    const std::vector<FunctionDecl>& a,
    const std::vector<FunctionDecl>& b) {
  std::vector<FunctionDecl> out = a;
  for (const FunctionDecl& fn : b) {
    bool dup = std::any_of(out.begin(), out.end(),
                           [&](const FunctionDecl& f) {
                             return ToUpper(f.name) == ToUpper(fn.name);
                           });
    if (!dup) out.push_back(fn);
  }
  return out;
}

// Folds the stats of a second evaluation phase into `into`: counters
// accumulate, the fact count reflects the final (second) instance.
void AccumulateStats(EvalStats* into, const EvalStats& second) {
  into->steps += second.steps;
  into->rule_firings += second.rule_firings;
  into->invented_oids += second.invented_oids;
  into->deletions += second.deletions;
  into->facts = second.facts;
  into->elapsed_micros += second.elapsed_micros;
}

}  // namespace

Result<Database> Database::Create(const std::string& source) {
  LOGRES_ASSIGN_OR_RETURN(ParsedUnit unit, logres::Parse(source));
  Database db;
  db.schema_ = std::move(unit.schema);
  db.functions_ = std::move(unit.functions);
  db.rules_ = std::move(unit.rules);
  for (ParsedModule& m : unit.modules) {
    db.modules_.push_back(Module::FromParsed(std::move(m)));
  }
  if (!unit.goals.empty()) {
    return Status::InvalidArgument(
        "top-level goals are not part of a database definition; put them "
        "in a module or use Query()");
  }
  // Validate S0 (with function backing associations).
  LOGRES_ASSIGN_OR_RETURN(Schema effective,
                          db.EffectiveSchema(db.schema_, db.functions_));
  (void)effective;
  return db;
}

Result<Schema> Database::EffectiveSchema(
    const Schema& base, const std::vector<FunctionDecl>& functions) const {
  Schema schema = base;
  for (const FunctionDecl& fn : functions) {
    FunctionDecl canonical = fn;
    canonical.name = ToUpper(fn.name);
    LOGRES_RETURN_NOT_OK(DeclareBackingAssociation(&schema, canonical));
  }
  LOGRES_RETURN_NOT_OK(schema.Validate());
  return schema;
}

Result<Oid> Database::InsertObject(const std::string& cls, Value ovalue) {
  std::string name = ToUpper(cls);
  if (!schema_.IsClass(name)) {
    return Status::NotFound(StrCat("'", cls, "' is not a class"));
  }
  return edb_.CreateObject(schema_, name, std::move(ovalue), &gen_,
                           ActiveUndo());
}

Status Database::InsertTuple(const std::string& assoc, Value tuple) {
  std::string name = ToUpper(assoc);
  if (!schema_.IsAssociation(name)) {
    return Status::NotFound(StrCat("'", assoc, "' is not an association"));
  }
  edb_.InsertTuple(name, std::move(tuple), ActiveUndo());
  return Status::OK();
}

Result<Instance> Database::Evaluate(
    const Schema& schema, const std::vector<FunctionDecl>& functions,
    const std::vector<Rule>& rules, const Instance& edb,
    const EvalOptions& options, EvalStats* stats) const {
  LOGRES_ASSIGN_OR_RETURN(Schema effective,
                          EffectiveSchema(schema, functions));
  LOGRES_ASSIGN_OR_RETURN(CheckedProgram program,
                          Typecheck(effective, functions, rules));
  Evaluator evaluator(effective, program, &gen_);
  LOGRES_ASSIGN_OR_RETURN(Instance instance,
                          evaluator.Run(edb, options));
  LOGRES_RETURN_NOT_OK(instance.CheckConsistent(effective));
  if (stats != nullptr) *stats = evaluator.stats();
  return instance;
}

Result<Instance> Database::Materialize(const EvalOptions& options) const {
  return Evaluate(schema_, functions_, rules_, edb_, options, nullptr);
}

Result<std::optional<std::vector<Bindings>>> Database::QueryGoalDirected(
    const Schema& schema, const std::vector<FunctionDecl>& functions,
    const std::vector<Rule>& rules, const Instance& edb, const Goal& goal,
    const EvalOptions& options, EvalStats* stats, Instance* cone) const {
  LOGRES_ASSIGN_OR_RETURN(Schema effective,
                          EffectiveSchema(schema, functions));
  MagicRewrite mr =
      MagicRewriteForGoal(effective, functions, rules, goal, options);
  if (!mr.applied) {
    if (stats != nullptr) stats->goal_directed_fallback = mr.fallback_reason;
    return std::optional<std::vector<Bindings>>();
  }
  Instance seeded = edb;
  for (const auto& [assoc, tuple] : mr.seeds) {
    seeded.InsertTuple(assoc, tuple);
  }
  Evaluator evaluator(mr.schema, mr.checked, &gen_);
  LOGRES_ASSIGN_OR_RETURN(Instance demanded, evaluator.Run(seeded, options));
  EvalStats run_stats = evaluator.stats();
  run_stats.magic_rules = mr.magic_rule_count;
  run_stats.demand_facts = CountMagicFacts(demanded);
  StripMagicFacts(&demanded);
  run_stats.facts = demanded.TotalFacts();
  run_stats.cone_fraction =
      edb.TotalFacts() == 0
          ? 0.0
          : static_cast<double>(demanded.TotalFacts()) / edb.TotalFacts();
  LOGRES_RETURN_NOT_OK(demanded.CheckConsistent(effective));
  LOGRES_ASSIGN_OR_RETURN(auto answer, evaluator.AnswerGoal(demanded, goal));
  if (stats != nullptr) *stats = std::move(run_stats);
  if (cone != nullptr) *cone = std::move(demanded);
  return std::optional(std::move(answer));
}

Result<std::vector<Bindings>> Database::Query(
    const Goal& goal, const EvalOptions& options) const {
  return Query(goal, options, nullptr);
}

Result<std::vector<Bindings>> Database::Query(const Goal& goal,
                                              const EvalOptions& options,
                                              EvalStats* stats) const {
  std::string fallback_reason;
  if (options.goal_directed) {
    EvalStats gd_stats;
    LOGRES_ASSIGN_OR_RETURN(
        auto attempted,
        QueryGoalDirected(schema_, functions_, rules_, edb_, goal, options,
                          &gd_stats, nullptr));
    if (attempted.has_value()) {
      if (stats != nullptr) *stats = std::move(gd_stats);
      return *std::move(attempted);
    }
    fallback_reason = std::move(gd_stats.goal_directed_fallback);
  }
  EvalStats whole_stats;
  LOGRES_ASSIGN_OR_RETURN(
      Instance instance,
      Evaluate(schema_, functions_, rules_, edb_, options, &whole_stats));
  LOGRES_ASSIGN_OR_RETURN(Schema effective,
                          EffectiveSchema(schema_, functions_));
  LOGRES_ASSIGN_OR_RETURN(CheckedProgram program,
                          Typecheck(effective, functions_, rules_));
  Evaluator evaluator(effective, program, &gen_);
  if (stats != nullptr) {
    *stats = std::move(whole_stats);
    stats->goal_directed_fallback = std::move(fallback_reason);
  }
  return evaluator.AnswerGoal(instance, goal);
}

Result<std::vector<Bindings>> Database::Query(
    const std::string& goal_text, const EvalOptions& options) const {
  return Query(goal_text, options, nullptr);
}

Result<std::vector<Bindings>> Database::Query(
    const std::string& goal_text, const EvalOptions& options,
    EvalStats* stats) const {
  LOGRES_ASSIGN_OR_RETURN(Goal goal, ParseGoal(goal_text));
  return Query(goal, options, stats);
}

Result<ModuleResult> Database::Apply(const Module& module,
                                     const EvalOptions& options) {
  return Apply(module,
               module.default_mode.value_or(ApplicationMode::kRIDI),
               options);
}

Result<ModuleResult> Database::ApplyByName(const std::string& name,
                                           const EvalOptions& options) {
  for (const Module& m : modules_) {
    if (m.name == ToLower(name)) return Apply(m, options);
  }
  return Status::NotFound(StrCat("no registered module named '", name, "'"));
}

Result<ModuleResult> Database::ApplySource(const std::string& source,
                                           ApplicationMode mode,
                                           const EvalOptions& options) {
  LOGRES_ASSIGN_OR_RETURN(Module module, Module::Parse(source));
  return Apply(module, mode, options);
}

Database::Snapshot::Snapshot(Snapshot&& other) noexcept
    : db_(other.db_),
      undo_base_(other.undo_base_),
      schema_(std::move(other.schema_)),
      rules_(std::move(other.rules_)),
      functions_(std::move(other.functions_)) {
  other.db_ = nullptr;
}

Database::Snapshot& Database::Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    Release();
    db_ = other.db_;
    undo_base_ = other.undo_base_;
    schema_ = std::move(other.schema_);
    rules_ = std::move(other.rules_);
    functions_ = std::move(other.functions_);
    other.db_ = nullptr;
  }
  return *this;
}

Database::Snapshot::~Snapshot() { Release(); }

void Database::Snapshot::Release() {
  if (db_ == nullptr) return;
  db_->ReleaseSnapshotMark(undo_base_);
  db_ = nullptr;
}

Database::Database(const Database& other)
    : schema_(other.schema_),
      rules_(other.rules_),
      functions_(other.functions_),
      edb_(other.edb_),
      modules_(other.modules_),
      gen_(other.gen_) {}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  rules_ = other.rules_;
  functions_ = other.functions_;
  edb_ = other.edb_;
  modules_ = other.modules_;
  gen_ = other.gen_;
  edb_undo_.Clear();
  snapshot_bases_.clear();
  return *this;
}

Database::Snapshot Database::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.db_ = this;
  snapshot.undo_base_ = edb_undo_.size();
  snapshot.schema_ = schema_;
  snapshot.rules_ = rules_;
  snapshot.functions_ = functions_;
  snapshot_bases_.push_back(snapshot.undo_base_);
  return snapshot;
}

void Database::ReleaseSnapshotMark(size_t base) const {
  for (auto it = snapshot_bases_.rbegin(); it != snapshot_bases_.rend();
       ++it) {
    if (*it == base) {
      snapshot_bases_.erase(std::next(it).base());
      break;
    }
  }
  if (snapshot_bases_.empty()) edb_undo_.Clear();
}

void Database::RestoreSnapshot(Snapshot snapshot) {
  edb_.RollbackTo(&edb_undo_, snapshot.undo_base_);
  schema_ = std::move(snapshot.schema_);
  rules_ = std::move(snapshot.rules_);
  functions_ = std::move(snapshot.functions_);
  // `snapshot` goes out of scope here and releases its mark.
}

void Database::ReplaceEdb(Instance next) {
  if (UndoLog* undo = ActiveUndo()) {
    undo->InstanceReplaced(
        std::make_unique<Instance>(std::move(edb_)));
  }
  edb_ = std::move(next);
}

Result<ModuleResult> Database::Apply(const Module& module,
                                     ApplicationMode mode,
                                     const EvalOptions& options) {
  // Module application is a transaction over the state triple: any
  // failure anywhere in ApplyInPlace — including one injected by a
  // failpoint at a step/stratum/builtin boundary — restores the
  // pre-application snapshot before the error surfaces.
  Snapshot snapshot = TakeSnapshot();
  Result<ModuleResult> result = ApplyInPlace(module, mode, options);
  if (!result.ok()) {
    RestoreSnapshot(std::move(snapshot));
    return result.status();
  }
  return result;
}

Result<ModuleResult> Database::ApplyInPlace(const Module& module,
                                            ApplicationMode mode,
                                            const EvalOptions& caller_options) {
  // Modules are parametric in their rule semantics (Section 1): a
  // declared `semantics` clause selects the evaluation mode; everything
  // else (budget, indexes, ...) stays with the caller.
  EvalOptions options = caller_options;
  if (module.semantics.has_value()) options.mode = *module.semantics;
  if (module.goal.has_value() && !AllowsGoal(mode)) {
    return Status::InvalidArgument(
        StrCat("mode ", ApplicationModeName(mode),
               " forbids a goal (Section 4.1); module '", module.name,
               "' declares one"));
  }

  ModuleResult result;
  bool goal_answered = false;

  switch (mode) {
    case ApplicationMode::kRIDI:
    case ApplicationMode::kRADI: {
      // Query over R0 ∪ RM with S0 ∪ SM.
      Schema merged = schema_;
      LOGRES_RETURN_NOT_OK(merged.Merge(module.schema));
      std::vector<FunctionDecl> fns =
          MergeFunctions(functions_, module.functions);
      std::vector<Rule> rules = rules_;
      rules.insert(rules.end(), module.rules.begin(), module.rules.end());
      if (module.goal.has_value() && options.goal_directed) {
        // A selective goal evaluates only its demanded cone
        // (core/magic.h); result.instance is then that cone — the part
        // of the merged fixpoint the goal depends on — rather than the
        // whole instance. Falls back to the whole fixpoint whenever the
        // rewrite cannot prove equivalence.
        Instance cone;
        LOGRES_ASSIGN_OR_RETURN(
            auto attempted,
            QueryGoalDirected(merged, fns, rules, edb_, *module.goal,
                              options, &result.stats, &cone));
        if (attempted.has_value()) {
          result.instance = std::move(cone);
          result.goal_answer = *std::move(attempted);
          goal_answered = true;
        }
      }
      if (!goal_answered) {
        std::string fallback_reason =
            std::move(result.stats.goal_directed_fallback);
        LOGRES_ASSIGN_OR_RETURN(
            result.instance,
            Evaluate(merged, fns, rules, edb_, options, &result.stats));
        result.stats.goal_directed_fallback = std::move(fallback_reason);
      }
      if (mode == ApplicationMode::kRADI) {
        schema_ = std::move(merged);
        rules_ = std::move(rules);
        functions_ = std::move(fns);
      }
      break;
    }
    case ApplicationMode::kRDDI: {
      rules_ = SubtractRules(rules_, module.rules);
      for (const std::string& name : module.schema.DomainNames()) {
        LOGRES_RETURN_NOT_OK(schema_.Undeclare(name));
      }
      for (const std::string& name : module.schema.ClassNames()) {
        LOGRES_RETURN_NOT_OK(schema_.Undeclare(name));
      }
      for (const std::string& name : module.schema.AssociationNames()) {
        LOGRES_RETURN_NOT_OK(schema_.Undeclare(name));
      }
      LOGRES_ASSIGN_OR_RETURN(
          result.instance,
          Evaluate(schema_, functions_, rules_, edb_, options,
                   &result.stats));
      break;
    }
    case ApplicationMode::kRIDV:
    case ApplicationMode::kRADV: {
      // E1 = the result of applying the update rules RM to E0.
      Schema merged = schema_;
      LOGRES_RETURN_NOT_OK(merged.Merge(module.schema));
      std::vector<FunctionDecl> fns =
          MergeFunctions(functions_, module.functions);
      LOGRES_ASSIGN_OR_RETURN(
          Instance e1, Evaluate(merged, fns, module.rules, edb_, options,
                                &result.stats));
      ReplaceEdb(std::move(e1));
      schema_ = std::move(merged);
      functions_ = std::move(fns);
      if (mode == ApplicationMode::kRADV) {
        rules_.insert(rules_.end(), module.rules.begin(),
                      module.rules.end());
      }
      // I1 = R1 applied to E1 must be consistent.
      EvalStats stats2;
      LOGRES_ASSIGN_OR_RETURN(
          result.instance,
          Evaluate(schema_, functions_, rules_, edb_, options, &stats2));
      AccumulateStats(&result.stats, stats2);
      break;
    }
    case ApplicationMode::kRDDV: {
      // E_M = the instance of (∅, R_M): facts derivable from the deleted
      // rules alone; E1 = E0 − E_M (associations by tuple equality,
      // classes by o-value equality, since invented oids differ).
      Instance empty;
      LOGRES_ASSIGN_OR_RETURN(
          Instance em, Evaluate(schema_, functions_, module.rules, empty,
                                options, &result.stats));
      for (const auto& [assoc, tuples] : em.associations()) {
        for (const Value& t : tuples) {
          edb_.EraseTuple(assoc, t, ActiveUndo());
        }
      }
      for (const auto& [cls, oids] : em.class_oids()) {
        for (Oid em_oid : oids) {
          auto em_value = em.OValue(em_oid);
          if (!em_value.ok()) continue;
          std::vector<Oid> to_remove;
          for (Oid oid : edb_.OidsOf(cls)) {
            auto v = edb_.OValue(oid);
            if (v.ok() && v.value() == em_value.value()) {
              to_remove.push_back(oid);
            }
          }
          for (Oid oid : to_remove) {
            LOGRES_RETURN_NOT_OK(
                edb_.RemoveObject(schema_, cls, oid, ActiveUndo()));
          }
        }
      }
      rules_ = SubtractRules(rules_, module.rules);
      for (const std::string& name : module.schema.DomainNames()) {
        LOGRES_RETURN_NOT_OK(schema_.Undeclare(name));
      }
      for (const std::string& name : module.schema.ClassNames()) {
        LOGRES_RETURN_NOT_OK(schema_.Undeclare(name));
      }
      for (const std::string& name : module.schema.AssociationNames()) {
        LOGRES_RETURN_NOT_OK(schema_.Undeclare(name));
      }
      EvalStats stats2;
      LOGRES_ASSIGN_OR_RETURN(
          result.instance,
          Evaluate(schema_, functions_, rules_, edb_, options, &stats2));
      AccumulateStats(&result.stats, stats2);
      break;
    }
  }

  // Goal answering (modes *DI only; Evaluate already used the module's
  // rules for RIDI/RADI). Note: for the *DI modes the state members
  // still hold S0/R0 here, so the merge below reconstructs S0 ∪ SM.
  if (module.goal.has_value() && !goal_answered) {
    Schema merged = schema_;
    LOGRES_RETURN_NOT_OK(merged.Merge(module.schema));
    std::vector<FunctionDecl> fns =
        MergeFunctions(functions_, module.functions);
    LOGRES_ASSIGN_OR_RETURN(Schema effective, EffectiveSchema(merged, fns));
    std::vector<Rule> rules = rules_;
    rules.insert(rules.end(), module.rules.begin(), module.rules.end());
    LOGRES_ASSIGN_OR_RETURN(CheckedProgram program,
                            Typecheck(effective, fns, rules));
    Evaluator evaluator(effective, program, &gen_);
    LOGRES_ASSIGN_OR_RETURN(
        auto answer, evaluator.AnswerGoal(result.instance, *module.goal));
    result.goal_answer = std::move(answer);
  }

  // The last injection site before the transaction commits: a fault here
  // proves the rollback path restores a fully mutated state.
  LOGRES_FAILPOINT("db.apply.commit");
  return result;
}

}  // namespace logres
