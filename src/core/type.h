// LOGRES type descriptors (paper Definition 1).
//
// A type is an elementary type (integer I, string S — plus bool and real,
// which footnote 2 of the paper admits as additional elementary types), a
// *named* reference to a domain / class / association defined by a type
// equation, or a construction: tuple (L1: t1, ..., Lk: tk), set {t},
// multiset [t], sequence <t>.
//
// Types are immutable shared trees, like Values. The refinement relation ≼
// (Definition 2) needs the schema to resolve named references, so it lives
// on Schema, not here.

#ifndef LOGRES_CORE_TYPE_H_
#define LOGRES_CORE_TYPE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace logres {

enum class TypeKind {
  kInt = 0,
  kString,
  kBool,
  kReal,
  kNamed,     // reference to a domain, class, or association by name
  kTuple,
  kSet,
  kMultiset,
  kSequence,
};

const char* TypeKindName(TypeKind kind);

/// \brief An immutable type descriptor.
class Type {
 public:
  /// Default-constructed type is integer.
  Type();

  static Type Int();
  static Type String();
  static Type Bool();
  static Type Real();

  /// \brief Reference to a named domain/class/association. What the name
  /// denotes is resolved against a Schema.
  static Type Named(std::string name);

  /// \brief Tuple with labeled components (order significant).
  static Type Tuple(std::vector<std::pair<std::string, Type>> fields);

  static Type Set(Type element);
  static Type Multiset(Type element);
  static Type Sequence(Type element);

  TypeKind kind() const;
  bool is_elementary() const {
    TypeKind k = kind();
    return k == TypeKind::kInt || k == TypeKind::kString ||
           k == TypeKind::kBool || k == TypeKind::kReal;
  }
  bool is_collection() const {
    TypeKind k = kind();
    return k == TypeKind::kSet || k == TypeKind::kMultiset ||
           k == TypeKind::kSequence;
  }

  /// Precondition: kind() == kNamed.
  const std::string& name() const;

  /// Precondition: kind() == kTuple.
  const std::vector<std::pair<std::string, Type>>& fields() const;

  /// \brief Field lookup by label; NotFound if absent, TypeError if not a
  /// tuple.
  Result<Type> field(const std::string& label) const;

  /// Precondition: is_collection().
  const Type& element() const;

  /// \brief Structural equality (named references compare by name).
  bool Equals(const Type& other) const;
  friend bool operator==(const Type& a, const Type& b) { return a.Equals(b); }
  friend bool operator!=(const Type& a, const Type& b) {
    return !a.Equals(b);
  }

  /// \brief Paper-style rendering: (name: NAME, roles: {ROLE}).
  std::string ToString() const;

  /// \brief All named references occurring in this type (with duplicates).
  std::vector<std::string> ReferencedNames() const;

  /// Opaque immutable representation (defined in type.cc; public only so
  /// that file-local helpers there can name it).
  struct Rep;

 private:
  explicit Type(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}
  std::shared_ptr<const Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Type& t) {
  return os << t.ToString();
}

}  // namespace logres

#endif  // LOGRES_CORE_TYPE_H_
