// Built-in predicates of the LOGRES rule language (paper Section 3.1).
//
// "LOGRES includes a comprehensive list of built-in predicates to handle
// complex terms (like, for example, Member, Union, Count, ...). Though
// built-in predicates do not add expressive power ... they greatly improve
// the readability and conciseness of LOGRES programs."
//
// Built-ins are untyped: argument types are checked for mutual consistency
// at evaluation time (e.g. union of two sets requires compatible kinds).
// Each built-in has a *mode*: which arguments must be bound (inputs) and
// which may be free (outputs, which the builtin then binds):
//
//   member(E, S)                        S in; E in (test) or out (enumerate)
//   union/intersection/difference(R, A, B)   A,B in; R in or out
//   append(S, E, R)                     S,E in; R in or out   (R = S ∪ {E})
//   count/sum/min/max/avg(S, N)         S in; N in or out
//   length(Q, N)                        Q in; N in or out
//   nth(Q, I, V)                        Q,I in; V in or out   (1-based)
//   empty(S) / even(N) / odd(N) / subset(A, B)   all in (tests)
//
// Example 3.3 (powerset) uses append({}, Y, X) and union(X, Y, Z) in
// exactly these modes.

#ifndef LOGRES_CORE_BUILTIN_H_
#define LOGRES_CORE_BUILTIN_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "algres/value.h"
#include "core/ast.h"
#include "util/status.h"

namespace logres {

/// \brief A substitution from variable names to values.
using Bindings = std::map<std::string, Value>;

/// \brief Grounds a term under the current bindings (provided by the
/// evaluator: handles data-function applications and arithmetic).
using TermEvalFn = std::function<Result<Value>(const TermPtr&)>;

/// \brief Matches a pattern term against a value, returning the extended
/// bindings on success (provided by the evaluator: handles oid coercions
/// and object dereferencing).
using TermMatchFn =
    std::function<Result<bool>(const TermPtr&, const Value&, Bindings*)>;

/// \brief Evaluates a (positive) built-in literal under \p bindings.
///
/// Returns every consistent extension of \p bindings — one entry for a
/// satisfied test, several for an enumerating member/2, none when the
/// built-in fails. Negated built-ins are handled by the caller (satisfied
/// iff this returns no extension).
Result<std::vector<Bindings>> SolveBuiltin(const Literal& literal,
                                           const Bindings& bindings,
                                           const TermEvalFn& eval_term,
                                           const TermMatchFn& match_term);

/// \brief Numeric-aware comparison: ints and reals compare by value across
/// kinds; everything else falls back to the structural total order, with a
/// TypeError for cross-kind comparisons (built-in argument types "should be
/// consistent").
Result<int> CompareValues(const Value& a, const Value& b);

/// \brief Evaluates an arithmetic operation on two numeric values.
Result<Value> EvalArith(ArithOp op, const Value& a, const Value& b);

}  // namespace logres

#endif  // LOGRES_CORE_BUILTIN_H_
