// Automatic integrity constraints (paper Sections 2.1 and 4.2).
//
// "The consistency of legal database states is dictated by a collection of
// integrity constraints, which are automatically built from type
// equations. Integrity constraints are expressed using the standard
// rule-based programming language."
//
// Two kinds are produced from a schema:
//
//  * Referential constraints — for every class-typed component:
//      - inside an association A:     <- a(f: X), not c(self X).
//        (associations must reference *existing* objects; nil forbidden)
//      - inside a class C1:           <- c1(f: X), not X = nil,
//                                        not c2(self X).
//        (class references may be nil, otherwise must exist)
//  * isa containment (Definition 4a), also expressible as rules
//        c2(self X) <- c1(self X).   for C1 isa C2
//    (the engine maintains this invariant natively when objects are
//    adopted; the rules are generated for inspection and for the
//    cross-check tests).
//
// Passive constraints (user denials, Section 4.2) are ordinary rules with
// an empty head and are handled by the evaluator directly.

#ifndef LOGRES_CORE_CONSTRAINT_H_
#define LOGRES_CORE_CONSTRAINT_H_

#include <vector>

#include "core/ast.h"
#include "core/schema.h"
#include "util/status.h"

namespace logres {

/// \brief Denial rules enforcing referential integrity, derived from the
/// type equations of \p schema.
Result<std::vector<Rule>> GenerateReferentialConstraints(
    const Schema& schema);

/// \brief isa-propagation rules (c_super(self X) <- c_sub(self X)) derived
/// from the isa declarations of \p schema.
Result<std::vector<Rule>> GenerateIsaPropagationRules(const Schema& schema);

}  // namespace logres

#endif  // LOGRES_CORE_CONSTRAINT_H_
