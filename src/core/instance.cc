#include "core/instance.h"

#include <algorithm>
#include <mutex>

#include "core/undo_log.h"
#include "util/string_util.h"

namespace logres {

namespace {

const std::set<Oid> kNoOids;
const std::set<Value> kNoTuples;

}  // namespace

Result<Oid> Instance::CreateObject(const Schema& schema,
                                   const std::string& cls, Value ovalue,
                                   OidGenerator* gen, UndoLog* undo) {
  if (!schema.IsClass(cls)) {
    return Status::NotFound(StrCat("'", cls, "' is not a class"));
  }
  // The generator is not covered by the log: rolled-back applications
  // consume oids (never reused), only the state restores.
  Oid oid = gen->Next();
  LOGRES_RETURN_NOT_OK(AdoptObject(schema, cls, oid, std::move(ovalue), undo));
  return oid;
}

void Instance::InsertMember(const std::string& cls, Oid oid, UndoLog* undo) {
  auto [it, key_created] = class_oids_.try_emplace(cls);
  if (key_created && undo != nullptr) undo->ClassKeyCreated(cls);
  if (it->second.insert(oid).second && undo != nullptr) {
    undo->OidInserted(cls, oid);
  }
}

void Instance::EraseMember(const std::string& cls, Oid oid, UndoLog* undo) {
  // Historically `class_oids_[cls].erase(oid)`: the operator[] creates an
  // empty entry when the class has none, and operator== sees that entry —
  // so the creation is deliberately kept and recorded.
  auto [it, key_created] = class_oids_.try_emplace(cls);
  if (key_created && undo != nullptr) undo->ClassKeyCreated(cls);
  if (it->second.erase(oid) > 0 && undo != nullptr) {
    undo->OidErased(cls, oid);
  }
}

Status Instance::AdoptObject(const Schema& schema, const std::string& cls,
                             Oid oid, Value ovalue, UndoLog* undo) {
  if (!schema.IsClass(cls)) {
    return Status::NotFound(StrCat("'", cls, "' is not a class"));
  }
  if (!oid.valid()) {
    return Status::InvalidArgument("cannot adopt the invalid oid 0");
  }
  class_index_cache_.clear();
  InsertMember(cls, oid, undo);
  for (const std::string& super : schema.AllSuperclasses(cls)) {
    InsertMember(super, oid, undo);
  }
  auto [it, created] = ovalues_.try_emplace(oid);
  if (undo != nullptr) {
    if (created) {
      undo->OValueCreated(oid);
    } else {
      undo->OValueSet(oid, std::move(it->second));
    }
  }
  it->second = std::move(ovalue);
  return Status::OK();
}

Status Instance::RemoveObject(const Schema& schema, const std::string& cls,
                              Oid oid, UndoLog* undo) {
  if (!schema.IsClass(cls)) {
    return Status::NotFound(StrCat("'", cls, "' is not a class"));
  }
  class_index_cache_.clear();
  EraseMember(cls, oid, undo);
  for (const std::string& sub : schema.AllSubclasses(cls)) {
    EraseMember(sub, oid, undo);
  }
  bool live = false;
  for (const auto& [c, oids] : class_oids_) {
    (void)c;
    if (oids.count(oid)) {
      live = true;
      break;
    }
  }
  if (!live) {
    auto it = ovalues_.find(oid);
    if (it != ovalues_.end()) {
      if (undo != nullptr) undo->OValueErased(oid, std::move(it->second));
      ovalues_.erase(it);
    }
  }
  return Status::OK();
}

const std::set<Oid>& Instance::OidsOf(const std::string& cls) const {
  auto it = class_oids_.find(cls);
  return it == class_oids_.end() ? kNoOids : it->second;
}

bool Instance::HasObject(const std::string& cls, Oid oid) const {
  return OidsOf(cls).count(oid) > 0;
}

Result<Value> Instance::OValue(Oid oid) const {
  auto it = ovalues_.find(oid);
  if (it == ovalues_.end()) {
    return Status::NotFound(StrCat("oid #", oid.id, " has no o-value"));
  }
  return it->second;
}

Status Instance::SetOValue(Oid oid, Value ovalue, UndoLog* undo) {
  auto it = ovalues_.find(oid);
  if (it == ovalues_.end()) {
    return Status::NotFound(StrCat("oid #", oid.id, " is not live"));
  }
  class_index_cache_.clear();
  if (undo != nullptr) undo->OValueSet(oid, std::move(it->second));
  it->second = std::move(ovalue);
  return Status::OK();
}

bool Instance::InsertTuple(const std::string& assoc, Value tuple,
                           UndoLog* undo) {
  InvalidateAssocIndexes(assoc);
  auto [it, key_created] = associations_.try_emplace(assoc);
  if (key_created && undo != nullptr) undo->AssocKeyCreated(assoc);
  auto [pos, inserted] = it->second.insert(std::move(tuple));
  if (inserted && undo != nullptr) undo->TupleInserted(assoc, *pos);
  return inserted;
}

bool Instance::EraseTuple(const std::string& assoc, const Value& tuple,
                          UndoLog* undo) {
  auto it = associations_.find(assoc);
  if (it == associations_.end()) return false;
  InvalidateAssocIndexes(assoc);
  auto node = it->second.extract(tuple);
  if (node.empty()) return false;
  if (undo != nullptr) undo->TupleErased(assoc, std::move(node.value()));
  return true;
}

bool Instance::DropAssociation(const std::string& assoc) {
  auto it = associations_.find(assoc);
  if (it == associations_.end()) return false;
  InvalidateAssocIndexes(assoc);
  associations_.erase(it);
  return true;
}

void Instance::RollbackTo(UndoLog* log, size_t base) {
  for (size_t i = log->size(); i-- > base;) {
    UndoRecord& rec = (*log)[i];
    switch (rec.kind) {
      case UndoRecord::Kind::kClassKeyCreated:
        // Reverse replay has already undone every later insertion into
        // this entry, so it is empty again — exactly what the creation
        // produced.
        class_index_cache_.clear();
        class_oids_.erase(rec.name);
        break;
      case UndoRecord::Kind::kOidInserted: {
        class_index_cache_.clear();
        auto it = class_oids_.find(rec.name);
        if (it != class_oids_.end()) it->second.erase(rec.oid);
        break;
      }
      case UndoRecord::Kind::kOidErased:
        class_index_cache_.clear();
        class_oids_[rec.name].insert(rec.oid);
        break;
      case UndoRecord::Kind::kOValueCreated:
        class_index_cache_.clear();
        ovalues_.erase(rec.oid);
        break;
      case UndoRecord::Kind::kOValueSet:
      case UndoRecord::Kind::kOValueErased:
        class_index_cache_.clear();
        ovalues_[rec.oid] = std::move(rec.value);
        break;
      case UndoRecord::Kind::kAssocKeyCreated:
        InvalidateAssocIndexes(rec.name);
        associations_.erase(rec.name);
        break;
      case UndoRecord::Kind::kTupleInserted: {
        InvalidateAssocIndexes(rec.name);
        auto it = associations_.find(rec.name);
        if (it != associations_.end()) it->second.erase(rec.value);
        break;
      }
      case UndoRecord::Kind::kTupleErased:
        InvalidateAssocIndexes(rec.name);
        associations_[rec.name].insert(std::move(rec.value));
        break;
      case UndoRecord::Kind::kInstanceReplaced:
        *this = std::move(*rec.replaced);
        break;
    }
  }
  log->Truncate(base);
}

void Instance::InvalidateAssocIndexes(const std::string& assoc) {
  // Entries are keyed (association, label); the affected association's
  // labels form a contiguous key range.
  auto it = assoc_index_cache_.lower_bound({assoc, ""});
  while (it != assoc_index_cache_.end() && it->first.first == assoc) {
    it = assoc_index_cache_.erase(it);
  }
}

const Value& Instance::NormalizeForIndex(const Value& v) {
  if (v.kind() == ValueKind::kTuple) {
    const Value* self = v.FindFieldRef(kSelfLabel);
    if (self != nullptr && self->kind() == ValueKind::kOid) {
      return *self;
    }
  }
  return v;
}

const Instance::ValueIndex& Instance::AssocIndex(
    const std::string& assoc, const std::string& label) const {
  auto key = std::make_pair(assoc, label);
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = assoc_index_cache_.find(key);
    if (it != assoc_index_cache_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  auto it = assoc_index_cache_.find(key);  // raced build by another worker
  if (it != assoc_index_cache_.end()) return it->second;
  ValueIndex index;
  const Value nil = Value::Nil();
  for (const Value& tuple : TuplesOf(assoc)) {
    const Value* fv = tuple.FindFieldRef(label);
    index.emplace(NormalizeForIndex(fv != nullptr ? *fv : nil), tuple);
  }
  return assoc_index_cache_.emplace(std::move(key), std::move(index))
      .first->second;
}

const Instance::OidIndex& Instance::ClassIndex(
    const std::string& cls, const std::string& label) const {
  auto key = std::make_pair(cls, label);
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    auto it = class_index_cache_.find(key);
    if (it != class_index_cache_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  auto it = class_index_cache_.find(key);  // raced build by another worker
  if (it != class_index_cache_.end()) return it->second;
  OidIndex index;
  const Value nil = Value::Nil();
  for (Oid oid : OidsOf(cls)) {
    auto ov = OValue(oid);
    if (!ov.ok()) continue;
    const Value* fv = ov.value().FindFieldRef(label);
    index.emplace(NormalizeForIndex(fv != nullptr ? *fv : nil), oid);
  }
  return class_index_cache_.emplace(std::move(key), std::move(index))
      .first->second;
}

const std::set<Value>& Instance::TuplesOf(const std::string& assoc) const {
  auto it = associations_.find(assoc);
  return it == associations_.end() ? kNoTuples : it->second;
}

size_t Instance::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& [cls, oids] : class_oids_) {
    bytes += cls.capacity() + oids.size() * (sizeof(Oid) + 32);
  }
  for (const auto& [oid, value] : ovalues_) {
    (void)oid;
    bytes += sizeof(Oid) + 32 + value.ApproxBytes();
  }
  for (const auto& [assoc, tuples] : associations_) {
    bytes += assoc.capacity();
    for (const Value& tuple : tuples) {
      bytes += 32 + tuple.ApproxBytes();
    }
  }
  return bytes;
}

size_t Instance::TotalFacts() const {
  size_t n = 0;
  for (const auto& [cls, oids] : class_oids_) {
    (void)cls;
    n += oids.size();
  }
  for (const auto& [assoc, tuples] : associations_) {
    (void)assoc;
    n += tuples.size();
  }
  return n;
}

Status Instance::CheckValueConforms(const Schema& schema, const Value& value,
                                    const Type& type, bool allow_nil_refs,
                                    const std::string& context) const {
  switch (type.kind()) {
    case TypeKind::kInt:
      if (value.kind() != ValueKind::kInt) break;
      return Status::OK();
    case TypeKind::kString:
      if (value.kind() != ValueKind::kString) break;
      return Status::OK();
    case TypeKind::kBool:
      if (value.kind() != ValueKind::kBool) break;
      return Status::OK();
    case TypeKind::kReal:
      if (value.kind() != ValueKind::kReal) break;
      return Status::OK();
    case TypeKind::kNamed: {
      const std::string& name = type.name();
      if (schema.IsClass(name)) {
        if (value.is_nil()) {
          if (allow_nil_refs) return Status::OK();
          return Status::ConstraintViolation(
              StrCat(context, ": nil oid for class '", name,
                     "' inside an association (associations must refer to "
                     "existing objects, Section 2.1)"));
        }
        if (value.kind() != ValueKind::kOid) break;
        if (!HasObject(name, value.oid_value())) {
          return Status::ConstraintViolation(
              StrCat(context, ": oid ", value.ToString(),
                     " is not a member of class '", name,
                     "' (active referential integrity)"));
        }
        return Status::OK();
      }
      // Domain or association alias: check against its expansion.
      LOGRES_ASSIGN_OR_RETURN(Type rhs, schema.TypeOf(name));
      return CheckValueConforms(schema, value, rhs, allow_nil_refs, context);
    }
    case TypeKind::kTuple: {
      if (value.kind() != ValueKind::kTuple) break;
      // Projection conformance: every type field must be present and
      // conforming; extra value fields (e.g. subclass attributes) are fine.
      for (const auto& [label, ftype] : type.fields()) {
        std::optional<Value> fv = value.FindField(label);
        if (!fv.has_value()) {
          return Status::ConstraintViolation(
              StrCat(context, ": value ", value.ToString(),
                     " lacks field '", label, "' of type ",
                     ftype.ToString()));
        }
        LOGRES_RETURN_NOT_OK(CheckValueConforms(
            schema, *fv, ftype, allow_nil_refs,
            StrCat(context, ".", label)));
      }
      return Status::OK();
    }
    case TypeKind::kSet: {
      if (value.kind() != ValueKind::kSet) break;
      for (const Value& e : value.elements()) {
        LOGRES_RETURN_NOT_OK(CheckValueConforms(
            schema, e, type.element(), allow_nil_refs, context));
      }
      return Status::OK();
    }
    case TypeKind::kMultiset: {
      if (value.kind() != ValueKind::kMultiset) break;
      for (const Value& e : value.elements()) {
        LOGRES_RETURN_NOT_OK(CheckValueConforms(
            schema, e, type.element(), allow_nil_refs, context));
      }
      return Status::OK();
    }
    case TypeKind::kSequence: {
      if (value.kind() != ValueKind::kSequence) break;
      for (const Value& e : value.elements()) {
        LOGRES_RETURN_NOT_OK(CheckValueConforms(
            schema, e, type.element(), allow_nil_refs, context));
      }
      return Status::OK();
    }
  }
  return Status::ConstraintViolation(
      StrCat(context, ": value ", value.ToString(), " does not conform to ",
             type.ToString()));
}

Status Instance::CheckConsistent(const Schema& schema) const {
  // Def. 4a: pi(C) ⊆ pi(C') along isa.
  for (const IsaDecl& d : schema.isa_decls()) {
    if (!d.component_label.empty()) continue;
    const std::set<Oid>& sub = OidsOf(d.sub);
    const std::set<Oid>& super = OidsOf(d.super);
    for (Oid oid : sub) {
      if (!super.count(oid)) {
        return Status::Inconsistent(
            StrCat("oid #", oid.id, " in '", d.sub, "' but not in its "
                   "superclass '", d.super, "' (Definition 4a)"));
      }
    }
  }

  // Def. 4b: classes sharing an oid must share a hierarchy root.
  std::map<Oid, std::vector<std::string>> membership;
  for (const auto& [cls, oids] : class_oids_) {
    for (Oid oid : oids) membership[oid].push_back(cls);
  }
  for (const auto& [oid, classes] : membership) {
    for (size_t i = 1; i < classes.size(); ++i) {
      if (!schema.SameHierarchy(classes[0], classes[i])) {
        return Status::Inconsistent(
            StrCat("oid #", oid.id, " belongs to '", classes[0], "' and '",
                   classes[i],
                   "' which have no common ancestor (Definition 4b)"));
      }
    }
  }

  // nu conformance: each live oid's value projects into every owning
  // class's type; every owning class's oid must have an o-value.
  for (const auto& [cls, oids] : class_oids_) {
    LOGRES_ASSIGN_OR_RETURN(Type tuple, schema.PredicateTuple(cls));
    for (Oid oid : oids) {
      auto it = ovalues_.find(oid);
      if (it == ovalues_.end()) {
        return Status::Inconsistent(
            StrCat("oid #", oid.id, " of class '", cls,
                   "' has no o-value"));
      }
      LOGRES_RETURN_NOT_OK(CheckValueConforms(
          schema, it->second, tuple, /*allow_nil_refs=*/true,
          StrCat(cls, "#", oid.id)));
    }
  }

  // rho conformance: tuples match the association type; class components
  // must reference existing objects (nil forbidden).
  for (const auto& [assoc, tuples] : associations_) {
    if (!schema.IsAssociation(assoc)) {
      return Status::Inconsistent(
          StrCat("instance stores tuples for undeclared association '",
                 assoc, "'"));
    }
    LOGRES_ASSIGN_OR_RETURN(Type tuple_type, schema.PredicateTuple(assoc));
    for (const Value& tuple : tuples) {
      LOGRES_RETURN_NOT_OK(CheckValueConforms(
          schema, tuple, tuple_type, /*allow_nil_refs=*/false, assoc));
    }
  }
  return Status::OK();
}

namespace {

// Rewrites every oid in `value` through `mapping`; oids without a mapping
// are left unchanged.
Value RewriteOids(const Value& value, const std::map<Oid, Oid>& mapping) {
  switch (value.kind()) {
    case ValueKind::kOid: {
      auto it = mapping.find(value.oid_value());
      return it == mapping.end() ? value : Value::MakeOid(it->second);
    }
    case ValueKind::kTuple: {
      std::vector<std::pair<std::string, Value>> fields;
      for (const auto& [label, v] : value.tuple_fields()) {
        fields.emplace_back(label, RewriteOids(v, mapping));
      }
      return Value::MakeTuple(std::move(fields));
    }
    case ValueKind::kSet:
    case ValueKind::kMultiset:
    case ValueKind::kSequence: {
      std::vector<Value> elems;
      for (const Value& e : value.elements()) {
        elems.push_back(RewriteOids(e, mapping));
      }
      if (value.kind() == ValueKind::kSet) {
        return Value::MakeSet(std::move(elems));
      }
      if (value.kind() == ValueKind::kMultiset) {
        return Value::MakeMultiset(std::move(elems));
      }
      return Value::MakeSequence(std::move(elems));
    }
    default:
      return value;
  }
}

// Computes a structural signature for each oid by color refinement: start
// from class memberships, then repeatedly fold in the o-value with nested
// oids replaced by their current colors.
std::map<Oid, size_t> RefineColors(const Instance& inst) {
  std::map<Oid, size_t> colors;
  for (const auto& [oid, v] : inst.ovalues()) {
    (void)v;
    colors[oid] = 0;
  }
  // Initial color: hash of owning class names.
  for (const auto& [cls, oids] : inst.class_oids()) {
    size_t h = std::hash<std::string>()(cls);
    for (Oid oid : oids) {
      HashCombine(&colors[oid], h);
    }
  }
  auto color_of_value = [&](const Value& v, auto&& self) -> size_t {
    switch (v.kind()) {
      case ValueKind::kOid: {
        auto it = colors.find(v.oid_value());
        return it == colors.end() ? 0x5eed : it->second;
      }
      case ValueKind::kTuple: {
        size_t h = 0x70u;
        for (const auto& [label, f] : v.tuple_fields()) {
          HashCombine(&h, std::hash<std::string>()(label));
          HashCombine(&h, self(f, self));
        }
        return h;
      }
      case ValueKind::kSet:
      case ValueKind::kMultiset:
      case ValueKind::kSequence: {
        size_t h = static_cast<size_t>(v.kind()) * 31;
        for (const Value& e : v.elements()) {
          HashCombine(&h, self(e, self));
        }
        return h;
      }
      default:
        return v.Hash();
    }
  };
  size_t n = colors.size();
  for (size_t round = 0; round < n + 1; ++round) {
    std::map<Oid, size_t> next;
    for (const auto& [oid, value] : inst.ovalues()) {
      size_t h = colors[oid];
      HashCombine(&h, color_of_value(value, color_of_value));
      next[oid] = h;
    }
    if (next == colors) break;
    colors = std::move(next);
  }
  return colors;
}

}  // namespace

bool Instance::IsomorphicTo(const Instance& other) const {
  if (*this == other) return true;
  if (ovalues_.size() != other.ovalues_.size()) return false;

  // Pair up oids by refined color, tie-breaking deterministically by oid
  // order; then verify the induced bijection actually maps one instance
  // onto the other (so the result is never a false positive).
  std::map<Oid, size_t> ca = RefineColors(*this);
  std::map<Oid, size_t> cb = RefineColors(other);
  std::multimap<size_t, Oid> by_color_a, by_color_b;
  for (const auto& [oid, c] : ca) by_color_a.emplace(c, oid);
  for (const auto& [oid, c] : cb) by_color_b.emplace(c, oid);

  std::map<Oid, Oid> mapping;  // this -> other
  auto ita = by_color_a.begin();
  auto itb = by_color_b.begin();
  while (ita != by_color_a.end() && itb != by_color_b.end()) {
    if (ita->first != itb->first) return false;
    mapping[ita->second] = itb->second;
    ++ita;
    ++itb;
  }
  if (ita != by_color_a.end() || itb != by_color_b.end()) return false;

  // Verify: rewrite this instance through the mapping and compare.
  Instance rewritten;
  for (const auto& [cls, oids] : class_oids_) {
    for (Oid oid : oids) {
      rewritten.class_oids_[cls].insert(mapping.at(oid));
    }
  }
  for (const auto& [oid, value] : ovalues_) {
    rewritten.ovalues_[mapping.at(oid)] = RewriteOids(value, mapping);
  }
  for (const auto& [assoc, tuples] : associations_) {
    for (const Value& t : tuples) {
      rewritten.associations_[assoc].insert(RewriteOids(t, mapping));
    }
  }
  return rewritten == other;
}

std::string Instance::ToString() const {
  std::string out;
  for (const auto& [cls, oids] : class_oids_) {
    out += StrCat("class ", cls, ":\n");
    for (Oid oid : oids) {
      auto it = ovalues_.find(oid);
      out += StrCat("  #", oid.id, " = ",
                    it == ovalues_.end() ? "?" : it->second.ToString(),
                    "\n");
    }
  }
  for (const auto& [assoc, tuples] : associations_) {
    out += StrCat("association ", assoc, ":\n");
    for (const Value& t : tuples) {
      out += StrCat("  ", t.ToString(), "\n");
    }
  }
  return out;
}

}  // namespace logres
