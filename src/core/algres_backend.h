// Compilation of LOGRES rules onto the ALGRES extended relational algebra.
//
// The paper's prototype runs LOGRES on top of ALGRES ("We plan to
// prototype LOGRES upon ALGRES ... Translation of the LOGRES data model
// into the relational one is described in [Ca90]", Sections 1 and 5).
// This module implements that translation for the *compilable fragment*:
//
//   * class and association predicates with labeled/positional arguments
//     over variables and constants (classes are represented as relations
//     with a distinguished $self oid column);
//   * nested tuple patterns over NF² cells, in bodies (compiled to path
//     selections/extensions) and heads (nested value construction);
//   * comparison literals, including equalities that *bind* a fresh
//     variable from arithmetic over bound ones;
//   * stratified negation, compiled to anti-joins with a stratum-wise
//     evaluation loop.
//
//   Outside the fragment — data functions, collection-valued builtins,
//   oid invention, deletion heads, unstratified negation — compilation
//   is rejected with NotImplemented; such programs run on the direct
//   Evaluator (whole-program inflationary semantics has no algebra
//   counterpart).
//
// Each rule body compiles to a select/rename/join/project pipeline; the
// program iterates to a fixpoint either naively (every step re-derives
// from the whole database) or semi-naively (joins are delta-restricted).
// The test suite cross-validates this backend against the direct
// Evaluator on the shared fragment; bench_engines compares their cost.

#ifndef LOGRES_CORE_ALGRES_BACKEND_H_
#define LOGRES_CORE_ALGRES_BACKEND_H_

#include <map>
#include <string>
#include <vector>

#include "algres/algebra.h"
#include "algres/relation.h"
#include "core/eval.h"
#include "core/instance.h"
#include "core/schema.h"
#include "core/typecheck.h"
#include "util/governor.h"
#include "util/status.h"

namespace logres {

/// \brief A database snapshot in relational form: one relation per
/// predicate. Class relations carry a leading "$self" oid column.
using RelationalDb = std::map<std::string, algres::Relation>;

/// \brief Converts the facts of \p instance into relations (classes get a
/// "$self" column followed by their effective fields).
Result<RelationalDb> InstanceToRelations(const Schema& schema,
                                         const Instance& instance);

/// \brief Converts relations back into an Instance.
Result<Instance> RelationsToInstance(const Schema& schema,
                                     const RelationalDb& db);

/// \brief Evaluation strategy of the compiled program.
enum class AlgresStrategy { kNaive, kSemiNaive };

/// \brief A LOGRES program compiled to ALGRES algebra.
class AlgresBackend {
 public:
  /// \brief Compiles \p program; NotImplemented if it leaves the flat
  /// positive fragment.
  static Result<AlgresBackend> Compile(const Schema& schema,
                                       const CheckedProgram& program);

  /// \brief Computes the fixpoint over \p edb. The budget shares its
  /// defaults (and its divergence/cancellation semantics) with the direct
  /// Evaluator's EvalOptions. \p num_threads partitions the compiled
  /// joins' probe phases (1 = serial, 0 = one per hardware thread); the
  /// result is identical for every thread count. \p intern_values scopes
  /// the hash-consing interner over the run, mirroring
  /// EvalOptions::intern_values (results identical either way).
  Result<Instance> Run(const Instance& edb,
                       AlgresStrategy strategy = AlgresStrategy::kSemiNaive,
                       const Budget& budget = {},
                       size_t num_threads = 1,
                       bool intern_values = true) const;

  /// \brief Relational entry point (used by benchmarks to skip instance
  /// conversion).
  Result<RelationalDb> RunRelational(
      RelationalDb db,
      AlgresStrategy strategy = AlgresStrategy::kSemiNaive,
      const Budget& budget = {}, size_t num_threads = 1,
      bool intern_values = true) const;

  /// \brief Answers \p goal over (\p rules, \p edb) on this backend.
  /// When options.goal_directed is on, the magic-set rewrite
  /// (core/magic.h) is compiled instead of the whole program, so only
  /// the goal's demanded cone is materialized; the whole program is
  /// compiled when the rewrite refuses (reason recorded in
  /// stats->goal_directed_fallback) or its output leaves the compilable
  /// fragment. The strategy follows options.semi_naive; budget, threads
  /// and interning map to Run's parameters.
  static Result<std::vector<Bindings>> QueryGoal(
      const Schema& effective_schema,
      const std::vector<FunctionDecl>& functions,
      const std::vector<Rule>& rules, const Instance& edb, const Goal& goal,
      const EvalOptions& options, EvalStats* stats = nullptr);

 private:
  struct CompiledLiteral {
    std::string predicate;                  // source relation
    // Column operations on the base relation:
    std::vector<std::pair<std::string, Value>> const_selects;  // col = v
    std::vector<std::pair<std::string, std::string>> var_projects;  // col->var
    // Nested access through tuple-valued cells (NF² patterns like
    // score: (home: H)): (column, field path, variable) bindings and
    // (column, field path, constant) selections.
    std::vector<std::tuple<std::string, std::vector<std::string>,
                           std::string>>
        path_projects;
    std::vector<std::tuple<std::string, std::vector<std::string>, Value>>
        path_selects;
  };
  struct CompiledCompare {
    CompareOp op;
    TermPtr lhs;
    TermPtr rhs;
    bool negated = false;
  };
  struct CompiledRule {
    std::string head_predicate;
    // Head columns: (output column, variable or constant).
    std::vector<std::pair<std::string, TermPtr>> head_columns;
    std::vector<CompiledLiteral> literals;
    // Negated predicate literals: compiled to anti-joins over the shared
    // variables (stratified programs only).
    std::vector<CompiledLiteral> negated_literals;
    std::vector<CompiledCompare> compares;
    int stratum = 0;
  };

  AlgresBackend(const Schema& schema) : schema_(&schema) {}

  Result<algres::Relation> EvalRule(const CompiledRule& rule,
                                    const RelationalDb& db,
                                    const RelationalDb* delta,
                                    size_t delta_index,
                                    ThreadPool* pool) const;

  Result<bool> RunStratum(const std::vector<const CompiledRule*>& rules,
                          RelationalDb* db, AlgresStrategy strategy,
                          ResourceGovernor* governor,
                          ThreadPool* pool) const;

  const Schema* schema_;
  std::vector<CompiledRule> rules_;
  int max_stratum_ = 0;
  std::map<std::string, std::vector<std::string>> pred_columns_;
};

}  // namespace logres

#endif  // LOGRES_CORE_ALGRES_BACKEND_H_
