#include "core/schema.h"

#include <algorithm>

#include "util/string_util.h"

namespace logres {

const char* DeclKindName(DeclKind kind) {
  switch (kind) {
    case DeclKind::kDomain: return "domain";
    case DeclKind::kClass: return "class";
    case DeclKind::kAssociation: return "association";
  }
  return "unknown";
}

Status Schema::Declare(const std::string& name, DeclKind kind, Type type) {
  if (name.empty()) {
    return Status::InvalidArgument("empty type name");
  }
  auto it = decls_.find(name);
  if (it != decls_.end()) {
    if (it->second.kind == kind && it->second.type == type) {
      return Status::OK();  // idempotent re-declaration
    }
    return Status::AlreadyExists(
        StrCat(DeclKindName(it->second.kind), " '", name,
               "' already declared"));
  }
  decls_.emplace(name, Decl{kind, std::move(type)});
  return Status::OK();
}

Status Schema::DeclareDomain(const std::string& name, Type type) {
  return Declare(name, DeclKind::kDomain, std::move(type));
}

Status Schema::DeclareClass(const std::string& name, Type type) {
  return Declare(name, DeclKind::kClass, std::move(type));
}

Status Schema::DeclareAssociation(const std::string& name, Type type) {
  return Declare(name, DeclKind::kAssociation, std::move(type));
}

Status Schema::DeclareIsa(const std::string& sub, const std::string& super,
                          const std::string& component_label) {
  for (const IsaDecl& d : isa_decls_) {
    if (d.sub == sub && d.super == super &&
        d.component_label == component_label) {
      return Status::OK();
    }
  }
  isa_decls_.push_back(IsaDecl{sub, super, component_label});
  return Status::OK();
}

Status Schema::DeclareInheritanceRename(const std::string& cls,
                                        const std::string& super,
                                        const std::string& old_label,
                                        const std::string& new_label) {
  auto key = std::make_tuple(cls, super, old_label);
  auto [it, inserted] = renames_.emplace(key, new_label);
  if (!inserted && it->second != new_label) {
    return Status::AlreadyExists(
        StrCat("conflicting rename for ", cls, "/", super, "/", old_label));
  }
  return Status::OK();
}

Status Schema::Undeclare(const std::string& name) {
  auto it = decls_.find(name);
  if (it == decls_.end()) {
    return Status::NotFound(StrCat("no declaration named '", name, "'"));
  }
  for (const auto& [other, decl] : decls_) {
    if (other == name) continue;
    auto refs = decl.type.ReferencedNames();
    if (std::find(refs.begin(), refs.end(), name) != refs.end()) {
      return Status::InvalidArgument(
          StrCat("cannot remove '", name, "': still referenced by '", other,
                 "'"));
    }
  }
  for (const IsaDecl& d : isa_decls_) {
    if (d.sub == name || d.super == name) {
      return Status::InvalidArgument(
          StrCat("cannot remove '", name, "': involved in isa declaration ",
                 d.sub, " isa ", d.super));
    }
  }
  decls_.erase(it);
  return Status::OK();
}

Status Schema::Merge(const Schema& other) {
  for (const auto& [name, decl] : other.decls_) {
    LOGRES_RETURN_NOT_OK(Declare(name, decl.kind, decl.type));
  }
  for (const IsaDecl& d : other.isa_decls_) {
    LOGRES_RETURN_NOT_OK(DeclareIsa(d.sub, d.super, d.component_label));
  }
  for (const auto& [key, new_label] : other.renames_) {
    LOGRES_RETURN_NOT_OK(DeclareInheritanceRename(
        std::get<0>(key), std::get<1>(key), std::get<2>(key), new_label));
  }
  return Status::OK();
}

bool Schema::Has(const std::string& name) const {
  return decls_.count(name) > 0;
}

bool Schema::IsDomain(const std::string& name) const {
  auto it = decls_.find(name);
  return it != decls_.end() && it->second.kind == DeclKind::kDomain;
}

bool Schema::IsClass(const std::string& name) const {
  auto it = decls_.find(name);
  return it != decls_.end() && it->second.kind == DeclKind::kClass;
}

bool Schema::IsAssociation(const std::string& name) const {
  auto it = decls_.find(name);
  return it != decls_.end() && it->second.kind == DeclKind::kAssociation;
}

Result<DeclKind> Schema::KindOf(const std::string& name) const {
  auto it = decls_.find(name);
  if (it == decls_.end()) {
    return Status::NotFound(StrCat("no declaration named '", name, "'"));
  }
  return it->second.kind;
}

Result<Type> Schema::TypeOf(const std::string& name) const {
  auto it = decls_.find(name);
  if (it == decls_.end()) {
    return Status::NotFound(StrCat("no declaration named '", name, "'"));
  }
  return it->second.type;
}

std::vector<std::string> Schema::DomainNames() const {
  std::vector<std::string> out;
  for (const auto& [name, decl] : decls_) {
    if (decl.kind == DeclKind::kDomain) out.push_back(name);
  }
  return out;
}

std::vector<std::string> Schema::ClassNames() const {
  std::vector<std::string> out;
  for (const auto& [name, decl] : decls_) {
    if (decl.kind == DeclKind::kClass) out.push_back(name);
  }
  return out;
}

std::vector<std::string> Schema::AssociationNames() const {
  std::vector<std::string> out;
  for (const auto& [name, decl] : decls_) {
    if (decl.kind == DeclKind::kAssociation) out.push_back(name);
  }
  return out;
}

bool Schema::IsaReachable(const std::string& sub,
                          const std::string& super) const {
  if (sub == super) return true;
  std::set<std::string> visited{sub};
  std::vector<std::string> frontier{sub};
  while (!frontier.empty()) {
    std::string current = std::move(frontier.back());
    frontier.pop_back();
    for (const IsaDecl& d : isa_decls_) {
      if (d.sub != current || !d.component_label.empty()) continue;
      if (d.super == super) return true;
      if (visited.insert(d.super).second) frontier.push_back(d.super);
    }
  }
  return false;
}

std::vector<std::string> Schema::DirectSuperclasses(
    const std::string& cls) const {
  std::vector<std::string> out;
  for (const IsaDecl& d : isa_decls_) {
    if (d.sub == cls && d.component_label.empty()) out.push_back(d.super);
  }
  return out;
}

std::vector<std::string> Schema::AllSuperclasses(
    const std::string& cls) const {
  std::vector<std::string> out;
  std::set<std::string> visited{cls};
  std::vector<std::string> frontier{cls};
  while (!frontier.empty()) {
    std::string current = std::move(frontier.back());
    frontier.pop_back();
    for (const std::string& super : DirectSuperclasses(current)) {
      if (visited.insert(super).second) {
        out.push_back(super);
        frontier.push_back(super);
      }
    }
  }
  return out;
}

std::vector<std::string> Schema::AllSubclasses(const std::string& cls) const {
  std::vector<std::string> out;
  for (const auto& [name, decl] : decls_) {
    if (decl.kind != DeclKind::kClass || name == cls) continue;
    if (IsaReachable(name, cls)) out.push_back(name);
  }
  return out;
}

Result<std::string> Schema::RootOf(const std::string& cls) const {
  if (!IsClass(cls)) {
    return Status::NotFound(StrCat("'", cls, "' is not a class"));
  }
  std::set<std::string> roots;
  std::vector<std::string> all = AllSuperclasses(cls);
  all.push_back(cls);
  for (const std::string& c : all) {
    if (DirectSuperclasses(c).empty()) roots.insert(c);
  }
  if (roots.size() != 1) {
    return Status::SchemaError(
        StrCat("class '", cls, "' has ", roots.size(),
               " root ancestors; multiple inheritance requires a common "
               "ancestor (no universal class exists)"));
  }
  return *roots.begin();
}

bool Schema::SameHierarchy(const std::string& c1,
                           const std::string& c2) const {
  auto r1 = RootOf(c1);
  auto r2 = RootOf(c2);
  return r1.ok() && r2.ok() && r1.value() == r2.value();
}

Result<bool> Schema::IsRefinement(const Type& t1, const Type& t2) const {
  std::set<std::pair<std::string, std::string>> in_progress;
  return RefineImpl(t1, t2, &in_progress);
}

Result<bool> Schema::RefineImpl(
    const Type& t1, const Type& t2,
    std::set<std::pair<std::string, std::string>>* in_progress) const {
  // Condition 1: identical elementary types or identical names.
  if (t1 == t2) return true;

  // isa shortcut: two class names in the isa relation refine directly
  // (this is what `C1 isa C2 implies C1 ≼ C2` requires to be checkable).
  if (t1.kind() == TypeKind::kNamed && t2.kind() == TypeKind::kNamed) {
    if (IsClass(t1.name()) && IsClass(t2.name())) {
      if (IsaReachable(t1.name(), t2.name())) return true;
      // Coinductive guard for mutually recursive class structures.
      auto key = std::make_pair(t1.name(), t2.name());
      if (in_progress->count(key)) return true;
      in_progress->insert(key);
      LOGRES_ASSIGN_OR_RETURN(auto f1, EffectiveFields(t1.name()));
      LOGRES_ASSIGN_OR_RETURN(auto f2, EffectiveFields(t2.name()));
      LOGRES_ASSIGN_OR_RETURN(
          bool r, RefineImpl(Type::Tuple(std::move(f1)),
                             Type::Tuple(std::move(f2)), in_progress));
      in_progress->erase(key);
      return r;
    }
  }

  // Condition 2: t1 ∈ D ∪ C (or A): unfold the left side.
  if (t1.kind() == TypeKind::kNamed) {
    if (!Has(t1.name())) {
      return Status::NotFound(StrCat("unknown type name '", t1.name(), "'"));
    }
    if (IsClass(t1.name())) {
      LOGRES_ASSIGN_OR_RETURN(auto f1, EffectiveFields(t1.name()));
      return RefineImpl(Type::Tuple(std::move(f1)), t2, in_progress);
    }
    LOGRES_ASSIGN_OR_RETURN(Type rhs, TypeOf(t1.name()));
    return RefineImpl(rhs, t2, in_progress);
  }

  // Symmetric unfolding of a named right side (generalizes condition 3).
  if (t2.kind() == TypeKind::kNamed) {
    if (!Has(t2.name())) {
      return Status::NotFound(StrCat("unknown type name '", t2.name(), "'"));
    }
    if (IsClass(t2.name())) {
      // A non-named t1 can never refine a class: classes are oid-bearing.
      LOGRES_ASSIGN_OR_RETURN(auto f2, EffectiveFields(t2.name()));
      return RefineImpl(t1, Type::Tuple(std::move(f2)), in_progress);
    }
    LOGRES_ASSIGN_OR_RETURN(Type rhs, TypeOf(t2.name()));
    return RefineImpl(t1, rhs, in_progress);
  }

  if (t1.kind() != t2.kind()) return false;

  switch (t1.kind()) {
    case TypeKind::kTuple: {
      // Condition 4: every label of t2 appears in t1 with a refining type
      // (t1 may have extra fields: q <= p).
      for (const auto& [label2, type2] : t2.fields()) {
        bool found = false;
        for (const auto& [label1, type1] : t1.fields()) {
          if (label1 != label2) continue;
          LOGRES_ASSIGN_OR_RETURN(bool r,
                                  RefineImpl(type1, type2, in_progress));
          if (!r) return false;
          found = true;
          break;
        }
        if (!found) return false;
      }
      return true;
    }
    case TypeKind::kSet:
    case TypeKind::kMultiset:
    case TypeKind::kSequence:
      // Conditions 5-7.
      return RefineImpl(t1.element(), t2.element(), in_progress);
    default:
      return false;  // distinct elementary types
  }
}

Result<bool> Schema::AreCompatible(const Type& t1, const Type& t2) const {
  LOGRES_ASSIGN_OR_RETURN(bool a, IsRefinement(t1, t2));
  if (a) return true;
  return IsRefinement(t2, t1);
}

Result<std::vector<std::pair<std::string, Type>>> Schema::EffectiveFields(
    const std::string& name) const {
  LOGRES_ASSIGN_OR_RETURN(DeclKind kind, KindOf(name));
  if (kind == DeclKind::kDomain) {
    return Status::InvalidArgument(
        StrCat("domain '", name,
               "' cannot be used as a predicate (domains are not "
               "first-class citizens, Section 2.1)"));
  }
  LOGRES_ASSIGN_OR_RETURN(Type rhs, TypeOf(name));

  // Structure-borrowing alias: CLASS = ASSOCIATION or CLASS = CLASS2.
  if (rhs.kind() == TypeKind::kNamed) {
    return EffectiveFields(rhs.name());
  }
  if (rhs.kind() != TypeKind::kTuple) {
    // A non-tuple RHS (legal for e.g. unary associations) is exposed as a
    // single field labeled by the declaration name, lower-cased.
    std::vector<std::pair<std::string, Type>> out;
    out.emplace_back(ToLower(name), rhs);
    return out;
  }

  std::vector<std::pair<std::string, Type>> out;
  for (const auto& [label, ftype] : rhs.fields()) {
    // Inheritance inlining: an unlabeled superclass component of a class.
    // The parser labels unlabeled components with the lower-cased type
    // name, so "unlabeled PERSON" arrives as {"person", Named("PERSON")}.
    bool inherited = false;
    if (kind == DeclKind::kClass && ftype.kind() == TypeKind::kNamed &&
        IsClass(ftype.name()) && label == ToLower(ftype.name()) &&
        IsaReachable(name, ftype.name())) {
      inherited = true;
    }
    if (inherited) {
      LOGRES_ASSIGN_OR_RETURN(auto super_fields,
                              EffectiveFields(ftype.name()));
      for (auto& [slabel, stype] : super_fields) {
        std::string exposed = slabel;
        auto rn = renames_.find(std::make_tuple(name, ftype.name(), slabel));
        if (rn != renames_.end()) exposed = rn->second;
        // Diamond inheritance: the same attribute reaching the class twice
        // through a common ancestor is merged silently; a *conflicting*
        // attribute (same label, different type) needs the renaming
        // policy.
        bool duplicate = false;
        for (const auto& [existing, t] : out) {
          if (existing != exposed) continue;
          if (t == stype) {
            duplicate = true;
            break;
          }
          return Status::SchemaError(StrCat(
              "class '", name, "' inherits conflicting label '", exposed,
              "' from '", ftype.name(),
              "'; add a renaming declaration to resolve it"));
        }
        if (!duplicate) out.emplace_back(std::move(exposed), stype);
      }
    } else {
      for (const auto& [existing, t] : out) {
        (void)t;
        if (existing == label) {
          return Status::SchemaError(
              StrCat("duplicate label '", label, "' in '", name, "'"));
        }
      }
      out.emplace_back(label, ftype);
    }
  }
  return out;
}

Result<Type> Schema::PredicateTuple(const std::string& name) const {
  LOGRES_ASSIGN_OR_RETURN(auto fields, EffectiveFields(name));
  return Type::Tuple(std::move(fields));
}

Result<Type> Schema::Expand(const Type& type) const {
  switch (type.kind()) {
    case TypeKind::kNamed: {
      const std::string& name = type.name();
      LOGRES_ASSIGN_OR_RETURN(DeclKind kind, KindOf(name));
      if (kind == DeclKind::kClass) return type;  // oid reference
      LOGRES_ASSIGN_OR_RETURN(Type rhs, TypeOf(name));
      return Expand(rhs);
    }
    case TypeKind::kTuple: {
      std::vector<std::pair<std::string, Type>> fields;
      for (const auto& [label, t] : type.fields()) {
        LOGRES_ASSIGN_OR_RETURN(Type e, Expand(t));
        fields.emplace_back(label, std::move(e));
      }
      return Type::Tuple(std::move(fields));
    }
    case TypeKind::kSet: {
      LOGRES_ASSIGN_OR_RETURN(Type e, Expand(type.element()));
      return Type::Set(std::move(e));
    }
    case TypeKind::kMultiset: {
      LOGRES_ASSIGN_OR_RETURN(Type e, Expand(type.element()));
      return Type::Multiset(std::move(e));
    }
    case TypeKind::kSequence: {
      LOGRES_ASSIGN_OR_RETURN(Type e, Expand(type.element()));
      return Type::Sequence(std::move(e));
    }
    default:
      return type;
  }
}

Status Schema::CheckDomainAcyclic(const std::string& name,
                                  std::set<std::string>* in_progress) const {
  if (in_progress->count(name)) {
    return Status::SchemaError(
        StrCat("domain '", name, "' is recursively defined"));
  }
  in_progress->insert(name);
  LOGRES_ASSIGN_OR_RETURN(Type type, TypeOf(name));
  for (const std::string& ref : type.ReferencedNames()) {
    if (IsDomain(ref)) {
      LOGRES_RETURN_NOT_OK(CheckDomainAcyclic(ref, in_progress));
    }
  }
  in_progress->erase(name);
  return Status::OK();
}

Status Schema::Validate() const {
  for (const auto& [name, decl] : decls_) {
    // Every referenced name must be declared.
    for (const std::string& ref : decl.type.ReferencedNames()) {
      auto it = decls_.find(ref);
      if (it == decls_.end()) {
        return Status::SchemaError(
            StrCat("'", name, "' references undeclared name '", ref, "'"));
      }
      DeclKind ref_kind = it->second.kind;
      switch (decl.kind) {
        case DeclKind::kDomain:
          if (ref_kind != DeclKind::kDomain) {
            return Status::SchemaError(StrCat(
                "domain '", name, "' may not reference ",
                DeclKindName(ref_kind), " '", ref,
                "' (Definition 2: domain descriptors contain no classes)"));
          }
          break;
        case DeclKind::kAssociation:
          if (ref_kind == DeclKind::kAssociation) {
            return Status::SchemaError(
                StrCat("association '", name, "' may not contain ",
                       "association '", ref,
                       "' (associations cannot contain associations)"));
          }
          break;
        case DeclKind::kClass:
          if (ref_kind == DeclKind::kAssociation &&
              !(decl.type.kind() == TypeKind::kNamed &&
                decl.type.name() == ref)) {
            return Status::SchemaError(StrCat(
                "class '", name, "' may reference association '", ref,
                "' only as a whole-RHS structural alias (Example 3.4)"));
          }
          break;
      }
    }
  }

  // Domain equations must terminate.
  for (const auto& [name, decl] : decls_) {
    if (decl.kind != DeclKind::kDomain) continue;
    std::set<std::string> in_progress;
    LOGRES_RETURN_NOT_OK(CheckDomainAcyclic(name, &in_progress));
  }

  // isa declarations.
  for (const IsaDecl& d : isa_decls_) {
    if (!IsClass(d.sub)) {
      return Status::SchemaError(
          StrCat("isa subject '", d.sub, "' is not a class"));
    }
    if (!IsClass(d.super)) {
      return Status::SchemaError(
          StrCat("isa target '", d.super, "' is not a class"));
    }
    if (!d.component_label.empty()) {
      // Labeled form: the component must exist and be of (a refinement of)
      // the superclass.
      LOGRES_ASSIGN_OR_RETURN(Type t, PredicateTuple(d.sub));
      LOGRES_ASSIGN_OR_RETURN(Type ft, t.field(d.component_label));
      LOGRES_ASSIGN_OR_RETURN(bool ok,
                              IsRefinement(ft, Type::Named(d.super)));
      if (!ok) {
        return Status::SchemaError(
            StrCat("component '", d.component_label, "' of '", d.sub,
                   "' does not refine class '", d.super, "'"));
      }
      continue;
    }
    if (IsaReachable(d.super, d.sub) && d.super != d.sub) {
      return Status::SchemaError(
          StrCat("isa cycle between '", d.sub, "' and '", d.super, "'"));
    }
    // Compare effective structures directly: going through the class names
    // would trivially succeed via the isa edge being validated. The
    // renaming policy is honoured: a super field renamed in the subclass
    // is expected under its new name.
    LOGRES_ASSIGN_OR_RETURN(auto sub_fields, EffectiveFields(d.sub));
    LOGRES_ASSIGN_OR_RETURN(auto super_fields, EffectiveFields(d.super));
    for (auto& [label, type] : super_fields) {
      (void)type;
      auto rn = renames_.find(std::make_tuple(d.sub, d.super, label));
      if (rn != renames_.end()) label = rn->second;
    }
    LOGRES_ASSIGN_OR_RETURN(
        bool refines,
        IsRefinement(Type::Tuple(std::move(sub_fields)),
                     Type::Tuple(std::move(super_fields))));
    if (!refines) {
      return Status::SchemaError(
          StrCat("'", d.sub, " isa ", d.super, "' declared but Sigma(",
                 d.sub, ") does not refine Sigma(", d.super, ")"));
    }
  }

  // Every class must sit in exactly one hierarchy (single root).
  for (const auto& [name, decl] : decls_) {
    if (decl.kind != DeclKind::kClass) continue;
    LOGRES_ASSIGN_OR_RETURN(std::string root, RootOf(name));
    (void)root;
    // EffectiveFields also detects multiple-inheritance label conflicts.
    LOGRES_ASSIGN_OR_RETURN(auto fields, EffectiveFields(name));
    (void)fields;
  }

  // Associations must expose effective fields too (checks alias legality).
  for (const auto& [name, decl] : decls_) {
    if (decl.kind != DeclKind::kAssociation) continue;
    LOGRES_ASSIGN_OR_RETURN(auto fields, EffectiveFields(name));
    (void)fields;
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  auto section = [&](DeclKind kind, const char* title) {
    bool any = false;
    for (const auto& [name, decl] : decls_) {
      if (decl.kind != kind) continue;
      if (!any) {
        out += title;
        out += "\n";
        any = true;
      }
      out += StrCat("  ", name, " = ", decl.type.ToString(), "\n");
    }
  };
  section(DeclKind::kDomain, "domains");
  section(DeclKind::kClass, "classes");
  section(DeclKind::kAssociation, "associations");
  for (const IsaDecl& d : isa_decls_) {
    out += StrCat("  ", d.sub, " ",
                  d.component_label.empty()
                      ? ""
                      : StrCat(d.component_label, " "),
                  "isa ", d.super, "\n");
  }
  return out;
}

}  // namespace logres
