#include "core/magic.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace logres {
namespace {

/// Demand pattern of one derived predicate: the set of fields whose
/// values flow from the goal. `full` means the predicate is demanded at
/// every binding (its rules run unguarded, no magic predicate exists).
/// Two occurrences demanding different field sets are weakened to the
/// intersection — one adornment per predicate keeps the rewrite linear
/// in the program and is always sound (weaker demand = larger cone).
struct Adornment {
  bool full = false;
  std::set<std::string> bound;
};

std::string MagicName(const std::string& pred) {
  return std::string(kMagicPrefix) + pred;
}

std::set<std::string> VarsOf(const Literal& lit) {
  std::vector<std::string> vars;
  lit.CollectVariables(&vars);
  return std::set<std::string>(vars.begin(), vars.end());
}

void AddVars(const Literal& lit, std::set<std::string>* bound) {
  std::vector<std::string> vars;
  lit.CollectVariables(&vars);
  bound->insert(vars.begin(), vars.end());
}

bool IsSubset(const std::set<std::string>& sub,
              const std::set<std::string>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

/// Labels of \p pred whose argument is a constant or an already-bound
/// variable — the demand this occurrence can absorb.
std::set<std::string> BoundLabels(const ResolvedPredicate& pred,
                                  const std::set<std::string>& bound_vars) {
  std::set<std::string> out;
  for (const auto& [label, term] : pred.fields) {
    if (term->kind() == TermKind::kConstant) {
      out.insert(label);
    } else if (term->kind() == TermKind::kVariable &&
               bound_vars.count(term->name()) > 0) {
      out.insert(label);
    }
  }
  return out;
}

/// Intersection-weakening merge; true when the adornment changed.
bool MergeDemand(std::map<std::string, Adornment>* adorn,
                 const std::string& pred,
                 const std::set<std::string>& occurrence_bound) {
  auto it = adorn->find(pred);
  if (it == adorn->end()) {
    Adornment a;
    if (occurrence_bound.empty()) {
      a.full = true;
    } else {
      a.bound = occurrence_bound;
    }
    adorn->emplace(pred, std::move(a));
    return true;
  }
  Adornment& a = it->second;
  if (a.full) return false;
  std::set<std::string> inter;
  std::set_intersection(a.bound.begin(), a.bound.end(),
                        occurrence_bound.begin(), occurrence_bound.end(),
                        std::inserter(inter, inter.begin()));
  if (inter == a.bound) return false;
  if (inter.empty()) {
    a.full = true;
    a.bound.clear();
  } else {
    a.bound = std::move(inter);
  }
  return true;
}

/// The magic literal for \p occurrence demanded at \p a: the occurrence's
/// terms for the adorned labels, in the predicate's declared field order
/// (which is also the magic association's field order).
Literal MagicLiteral(const std::string& pred, const Adornment& a,
                     const ResolvedPredicate& occurrence,
                     const std::vector<std::string>& field_order) {
  std::vector<Arg> args;
  for (const std::string& label : field_order) {
    if (a.bound.count(label) == 0) continue;
    for (const auto& [occ_label, term] : occurrence.fields) {
      if (occ_label == label) {
        args.push_back(Arg{label, term, /*is_self=*/false});
        break;
      }
    }
  }
  return Literal::Predicate(MagicName(pred), std::move(args));
}

}  // namespace

bool IsMagicName(const std::string& name) {
  return name.rfind(kMagicPrefix, 0) == 0;
}

size_t CountMagicFacts(const Instance& instance) {
  size_t n = 0;
  for (const auto& [name, tuples] : instance.associations()) {
    if (IsMagicName(name)) n += tuples.size();
  }
  return n;
}

void StripMagicFacts(Instance* instance) {
  std::vector<std::string> magic;
  for (const auto& [name, tuples] : instance->associations()) {
    if (IsMagicName(name)) magic.push_back(name);
  }
  for (const std::string& name : magic) instance->DropAssociation(name);
}

MagicRewrite MagicRewriteForGoal(const Schema& effective_schema,
                                 const std::vector<FunctionDecl>& functions,
                                 const std::vector<Rule>& rules,
                                 const Goal& goal,
                                 const EvalOptions& options) {
  MagicRewrite mr;
  auto fallback = [](std::string reason) -> MagicRewrite {
    MagicRewrite out;
    out.applied = false;
    out.fallback_reason = std::move(reason);
    out.plan = "goal-directed: fallback to whole-program evaluation (" +
               out.fallback_reason + ")";
    return out;
  };

  if (options.mode != EvalMode::kStratified) {
    return fallback("goal-directed evaluation requires stratified mode");
  }
  if (!functions.empty()) {
    return fallback("data functions present");
  }
  if (goal.literals.empty()) {
    return fallback("empty goal");
  }

  Result<CheckedProgram> checked_or =
      Typecheck(effective_schema, functions, rules);
  if (!checked_or.ok()) {
    return fallback(StrCat("program analysis failed: ",
                           checked_or.status().message()));
  }
  CheckedProgram checked = std::move(checked_or).value();
  if (!checked.stratified) {
    return fallback("program is not stratified");
  }

  // The goal is analyzed as a headless rule, exactly like
  // Evaluator::AnswerGoal will evaluate it over the cone — in particular
  // with the same bound-first body schedule, so the sideways information
  // passes used below to seed demand are the ones the answer enumeration
  // will take.
  Rule goal_rule;
  goal_rule.body = goal.literals;
  Result<CheckedProgram> goal_or =
      Typecheck(effective_schema, functions, {goal_rule});
  if (!goal_or.ok()) {
    return fallback(
        StrCat("goal analysis failed: ", goal_or.status().message()));
  }
  const CheckedRule& checked_goal = goal_or.value().rules[0];

  // ---- Fragment gates -----------------------------------------------------
  // Everything here is a *proof obligation*, not a preference: each gate
  // names a construct whose whole-program semantics the demanded cone
  // cannot be proven to reproduce (see the header comment).
  for (const CheckedRule& rule : checked.rules) {
    if (rule.source.is_denial()) {
      return fallback("denial constraints present");
    }
    if (rule.head->negated()) {
      return fallback("deletion (negated) heads present");
    }
    if (rule.head->pred.has_value() && rule.head->pred->is_class) {
      return fallback("class-predicate heads present");
    }
    if (rule.invents_oid || rule.shares_head_oid) {
      return fallback("oid invention present");
    }
    if (rule.defines_function) {
      return fallback("data functions present");
    }
  }
  auto gate_body = [&](const std::vector<CheckedLiteral>& body,
                       const char* what) -> std::optional<std::string> {
    std::set<std::string> positive_vars;
    for (const CheckedLiteral& cl : body) {
      if (cl.kind() == LiteralKind::kBuiltin) {
        return StrCat("collection builtins present in ", what);
      }
      if (cl.kind() == LiteralKind::kPredicate && !cl.negated()) {
        AddVars(cl.source, &positive_vars);
      }
    }
    for (const CheckedLiteral& cl : body) {
      if (cl.kind() == LiteralKind::kPredicate && cl.negated() &&
          !IsSubset(VarsOf(cl.source), positive_vars)) {
        // An unbound variable in a negated literal enumerates the active
        // domain (eval.cc ForEachNegatedMatch) — which is smaller in the
        // cone than in the whole program, so the results could differ.
        return StrCat("negated literal ranges over the active domain in ",
                      what);
      }
    }
    return std::nullopt;
  };
  for (const CheckedRule& rule : checked.rules) {
    if (auto why = gate_body(rule.body, "a rule body")) return fallback(*why);
  }
  if (auto why = gate_body(checked_goal.body, "the goal")) {
    return fallback(*why);
  }

  // Derived (IDB) predicates and their declared field order.
  std::set<std::string> idb;
  for (const CheckedRule& rule : checked.rules) {
    idb.insert(rule.head->pred->name);
  }
  std::map<std::string, std::vector<std::string>> field_order;
  for (const std::string& pred : idb) {
    Result<std::vector<std::pair<std::string, Type>>> fields_or =
        effective_schema.EffectiveFields(pred);
    if (!fields_or.ok()) {
      return fallback(StrCat("cannot resolve fields of ", pred, ": ",
                             fields_or.status().message()));
    }
    std::vector<std::string>& order = field_order[pred];
    for (const auto& [label, type] : *fields_or) order.push_back(label);
  }
  // Demand can only be expressed over occurrences whose arguments are
  // plain constants/variables per labeled field; tuple variables or
  // constructed terms on a derived predicate defeat the guard/magic
  // literal construction.
  auto occurrence_simple = [&](const CheckedLiteral& cl) {
    if (!cl.pred.has_value() || idb.count(cl.pred->name) == 0) return true;
    if (cl.pred->tuple_var != nullptr || cl.pred->self_term != nullptr) {
      return false;
    }
    for (const auto& [label, term] : cl.pred->fields) {
      if (term->kind() != TermKind::kConstant &&
          term->kind() != TermKind::kVariable) {
        return false;
      }
    }
    return true;
  };
  for (const CheckedRule& rule : checked.rules) {
    if (!occurrence_simple(*rule.head)) {
      return fallback("complex arguments on a derived predicate");
    }
    for (const CheckedLiteral& cl : rule.body) {
      if (cl.kind() == LiteralKind::kPredicate && !occurrence_simple(cl)) {
        return fallback("complex arguments on a derived predicate");
      }
    }
  }
  for (const CheckedLiteral& cl : checked_goal.body) {
    if (cl.kind() == LiteralKind::kPredicate && !occurrence_simple(cl)) {
      return fallback("complex arguments on a derived predicate");
    }
  }

  // ---- Adornment fixpoint -------------------------------------------------
  // Walk each demanded rule in its scheduled body order, tracking which
  // variables are bound (head fields named by the adornment, then each
  // positive literal's variables — the PR 4 SIP), and fold every derived
  // occurrence's bound-label set into its predicate's adornment. Merges
  // only weaken (shrink or flip to full), so this terminates.
  std::map<std::string, Adornment> adorn;
  auto walk = [&](const CheckedRule& rule,
                  const Adornment* head_adorn) -> bool {
    bool changed = false;
    std::set<std::string> bound;
    if (head_adorn != nullptr && !head_adorn->full) {
      for (const auto& [label, term] : rule.head->pred->fields) {
        if (head_adorn->bound.count(label) > 0 &&
            term->kind() == TermKind::kVariable) {
          bound.insert(term->name());
        }
      }
    }
    for (const CheckedLiteral& cl : rule.body) {
      if (cl.kind() != LiteralKind::kPredicate) continue;
      const ResolvedPredicate& rp = *cl.pred;
      if (idb.count(rp.name) > 0) {
        changed |= MergeDemand(&adorn, rp.name, BoundLabels(rp, bound));
      }
      if (!cl.negated()) AddVars(cl.source, &bound);
    }
    return changed;
  };
  for (bool changed = true; changed;) {
    changed = walk(checked_goal, nullptr);
    for (const CheckedRule& rule : checked.rules) {
      auto it = adorn.find(rule.head->pred->name);
      if (it == adorn.end()) continue;
      Adornment head_adorn = it->second;  // copy: walk may reallocate
      changed |= walk(rule, &head_adorn);
    }
  }

  size_t kept = 0;
  for (const CheckedRule& rule : checked.rules) {
    if (adorn.count(rule.head->pred->name) > 0) ++kept;
  }
  size_t dropped = checked.rules.size() - kept;
  bool any_magic = false;
  for (const auto& [pred, a] : adorn) any_magic |= !a.full;
  if (!any_magic && dropped == 0) {
    return fallback(
        "goal does not restrict evaluation "
        "(no bound argument reaches a derived predicate)");
  }

  // ---- Schema: declare the magic associations -----------------------------
  mr.schema = effective_schema;
  for (const auto& [pred, a] : adorn) {
    if (a.full) continue;
    Result<std::vector<std::pair<std::string, Type>>> fields_or =
        effective_schema.EffectiveFields(pred);
    std::vector<std::pair<std::string, Type>> magic_fields;
    for (const auto& [label, type] : *fields_or) {
      if (a.bound.count(label) > 0) magic_fields.emplace_back(label, type);
    }
    Status declared = mr.schema.DeclareAssociation(
        MagicName(pred), Type::Tuple(std::move(magic_fields)));
    if (!declared.ok()) {
      return fallback(StrCat("cannot declare magic association for ", pred,
                             ": ", declared.message()));
    }
    mr.magic_predicates.push_back(MagicName(pred));
  }

  // ---- Guarded rules, magic rules, seeds ----------------------------------
  std::set<std::string> rule_keys;  // dedupe magic rules by printed form
  std::set<std::pair<std::string, Value>> seed_set;
  std::vector<Rule> magic_rules;
  auto emit_demand = [&](const CheckedRule& rule,
                         const Adornment* head_adorn,
                         const std::optional<Literal>& guard) {
    std::set<std::string> bound;
    if (head_adorn != nullptr && !head_adorn->full) {
      for (const auto& [label, term] : rule.head->pred->fields) {
        if (head_adorn->bound.count(label) > 0 &&
            term->kind() == TermKind::kVariable) {
          bound.insert(term->name());
        }
      }
    }
    std::vector<Literal> prefix;
    for (const CheckedLiteral& cl : rule.body) {
      if (cl.kind() == LiteralKind::kCompare) {
        // A comparison whose variables are all bound sharpens demand;
        // one that would *bind* (e.g. X = 5 scheduled as an assignment)
        // is conservatively dropped from the prefix — weaker demand is
        // always sound.
        if (IsSubset(VarsOf(cl.source), bound)) prefix.push_back(cl.source);
        continue;
      }
      if (cl.kind() != LiteralKind::kPredicate) continue;
      const ResolvedPredicate& rp = *cl.pred;
      auto it = adorn.find(rp.name);
      if (it != adorn.end() && !it->second.full) {
        Literal magic_head =
            MagicLiteral(rp.name, it->second, rp, field_order[rp.name]);
        std::vector<Literal> body;
        if (guard.has_value()) body.push_back(*guard);
        body.insert(body.end(), prefix.begin(), prefix.end());
        if (body.empty()) {
          // Ground demand (every adorned argument is a constant): a seed
          // fact, not a rule.
          std::vector<std::pair<std::string, Value>> fields;
          for (const Arg& arg : magic_head.args) {
            fields.emplace_back(arg.label, arg.term->constant());
          }
          seed_set.emplace(MagicName(rp.name),
                           Value::MakeTuple(std::move(fields)));
        } else {
          Rule m;
          m.head = magic_head;
          m.body = std::move(body);
          bool tautology = m.body.size() == 1 &&
                           m.body[0].ToString() == magic_head.ToString();
          if (!tautology && rule_keys.insert(m.ToString()).second) {
            magic_rules.push_back(std::move(m));
          }
        }
      }
      if (!cl.negated()) {
        AddVars(cl.source, &bound);
        prefix.push_back(cl.source);
      } else if (IsSubset(VarsOf(cl.source), bound)) {
        // Negated filters only join the prefix when their variables are
        // bound by the positive literals already in it, so the magic
        // rule stays safe under the scheduler.
        prefix.push_back(cl.source);
      }
    }
  };

  std::vector<Rule> guarded;
  emit_demand(checked_goal, nullptr, std::nullopt);
  for (const CheckedRule& rule : checked.rules) {
    auto it = adorn.find(rule.head->pred->name);
    if (it == adorn.end()) continue;
    const Adornment& a = it->second;
    Rule out = rule.source;
    std::optional<Literal> guard;
    if (!a.full) {
      std::set<std::string> head_labels;
      for (const auto& [label, term] : rule.head->pred->fields) {
        head_labels.insert(label);
      }
      if (!IsSubset(a.bound, head_labels)) {
        return fallback(
            StrCat("rule head for ", rule.head->pred->name,
                   " does not expose the demanded fields"));
      }
      guard = MagicLiteral(rule.head->pred->name, a, *rule.head->pred,
                           field_order[rule.head->pred->name]);
      out.body.insert(out.body.begin(), *guard);
    }
    guarded.push_back(std::move(out));
    emit_demand(rule, &a, guard);
  }

  mr.rules = std::move(guarded);
  mr.rules.insert(mr.rules.end(), magic_rules.begin(), magic_rules.end());
  mr.seeds.assign(seed_set.begin(), seed_set.end());
  mr.magic_rule_count = magic_rules.size();
  mr.dropped_rules = dropped;

  // ---- Stratification re-check --------------------------------------------
  // Magic rules copy negated prefix literals, so the rewrite of a
  // stratified program can contain negation through a new demand cycle.
  // Evaluating that would change semantics; detect it and fall back.
  Result<CheckedProgram> rewritten_or = Typecheck(mr.schema, {}, mr.rules);
  if (!rewritten_or.ok()) {
    return fallback(StrCat("rewritten program rejected: ",
                           rewritten_or.status().message()));
  }
  if (!rewritten_or->stratified) {
    return fallback("magic rewrite would lose stratification");
  }
  mr.checked = std::move(rewritten_or).value();
  mr.applied = true;

  std::ostringstream plan;
  plan << "goal-directed plan for: " << goal.ToString() << "\n";
  plan << "  adornments (bound fields per derived predicate; * = full):\n";
  for (const auto& [pred, a] : adorn) {
    plan << "    " << pred << "[";
    if (a.full) {
      plan << "*";
    } else {
      bool first = true;
      for (const std::string& label : a.bound) {
        if (!first) plan << ", ";
        plan << label;
        first = false;
      }
    }
    plan << "]\n";
  }
  plan << "  rules: " << (mr.rules.size() - mr.magic_rule_count) << " of "
       << checked.rules.size() << " kept (" << dropped << " dropped), "
       << mr.magic_rule_count << " magic rules, " << mr.seeds.size()
       << " seeds\n";
  plan << "  rewritten program:\n";
  for (const Rule& rule : mr.rules) {
    plan << "    " << rule.ToString() << "\n";
  }
  for (const auto& [assoc, tuple] : mr.seeds) {
    plan << "    seed " << assoc << " " << tuple.ToString() << "\n";
  }
  mr.plan = plan.str();
  return mr;
}

}  // namespace logres
