// The LOGRES evaluator: deterministic inflationary fixpoint semantics
// (paper Section 3 and Appendix B).
//
// Given a set of extensional facts E (an Instance) and an analyzed program
// R, the evaluator computes the sequence F0 = E, F1, F2, ... where each
// step applies the one-step inflationary operator:
//
//   VD(R, F)  — the valuation domain: all (rule, body valuation) pairs
//               whose body is satisfied by F and whose head is *not yet*
//               satisfiable in F (Definition 7);
//   eta       — the valuation map: head variables bound from the body;
//               an unbound head self variable receives an *invented oid*,
//               unique per valuated body, memoized across steps so "once a
//               rule has been fired for a certain substitution ... that
//               rule cannot generate any more oids for the same
//               substitution" (Definition 8);
//   Delta+/Delta- — facts derived by positive / negated heads;
//   F' = ((F ⊕ Δ+) − Δ−) ⊕ (F ∩ Δ+ ∩ Δ−)   with ⊕ the non-commutative
//               composition that lets new o-values supersede old ones for
//               the same oid.
//
// Iteration stops at Fk = Fk+1; divergence is caught by a step budget
// (termination "is not guaranteed, and it is not even decidable").
//
// Modes:
//  * kStratified (default): strata from the type checker are evaluated
//    bottom-up, each to its inflationary fixpoint — the perfect model on
//    stratified programs ("if we use inflationary semantics within each
//    stratum ... this yields the perfect model semantics"). Falls back to
//    whole-program inflationary when the program is not stratified, as
//    Section 3.1 prescribes.
//  * kWholeInflationary: all rules in a single fixpoint.
//  * kNonInflationary: replacement semantics — each step rebuilds the
//    instance from E plus the facts derived from the previous step (the
//    second, non-inflationary language the paper mentions; termination is
//    entirely the program's responsibility).
//
// Within a stratum whose rules are positive, invention-free, and
// data-function-free, a semi-naive delta evaluation is used (at least one
// body predicate literal must match a newly derived fact); this is an
// optimization only — results are identical, as the test suite checks.

#ifndef LOGRES_CORE_EVAL_H_
#define LOGRES_CORE_EVAL_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/builtin.h"
#include "core/instance.h"
#include "core/modes.h"
#include "core/schema.h"
#include "core/typecheck.h"
#include "util/governor.h"
#include "util/status.h"

namespace logres {

class ThreadPool;

struct EvalOptions {
  EvalMode mode = EvalMode::kStratified;
  /// Resource limits and cancellation, shared with the ALGRES backend:
  /// budget.max_steps bounds one-step applications (kDivergence),
  /// budget.timeout / budget.max_facts bound wall-clock and state growth
  /// (kResourceExhausted), budget.cancel is polled every step
  /// (kCancelled).
  Budget budget;
  /// Evaluate denial rules (passive constraints) after the fixpoint and
  /// fail with ConstraintViolation when one fires.
  bool check_denials = true;
  /// Allow the semi-naive optimization on qualifying strata.
  bool semi_naive = true;
  /// Probe lazily built per-step hash indexes on association fields and
  /// class oids instead of scanning (ablation flag; results identical).
  bool use_indexes = true;
  /// Execute each rule body bound-first: positive predicate literals are
  /// reordered (within barrier-delimited runs; see ScheduleBody in
  /// eval.cc) so bound positions turn later literals into indexed probes
  /// (ablation flag; results identical).
  bool reorder_literals = true;
  /// When > 0 and the program is stratified, each stratum evaluates under
  /// its own Budget::Substratum(stratum_fraction) sub-budget instead of
  /// drawing from the shared budget, so a runaway stratum exhausts its
  /// slice (kDivergence, with the stratum in the error context) without
  /// starving later strata. 0 keeps the single shared governor.
  double stratum_fraction = 0;
  /// Reference/ablation flag: apply each fixpoint step the historical way
  /// — copy the whole instance, apply the delta to the copy, compare the
  /// copies — instead of mutating one instance under an undo log. Results
  /// are byte-identical either way (the differential suites prove it);
  /// the copy path costs O(|instance|) per step.
  bool use_snapshot_steps = false;
  /// Route Value construction through the hash-consing interner
  /// (algres/interner.h) for the duration of the evaluation: one
  /// canonical node per structurally-distinct real-free value, equality
  /// by pointer compare. Results are byte-identical either way (the
  /// differential suites prove it); off is the plain-allocation
  /// reference path, like use_snapshot_steps.
  bool intern_values = true;
  /// Goal-directed evaluation: when answering a goal with at least one
  /// bound (constant) argument, rewrite the program with magic sets
  /// (core/magic.h) so only the demanded cone is computed, instead of
  /// materializing the whole fixpoint and filtering. Answers are
  /// identical — the rewrite falls back to whole-program evaluation
  /// (recording EvalStats::goal_directed_fallback) whenever it cannot
  /// prove that, e.g. when the rewrite would lose stratification. Off is
  /// the whole-program reference path, like use_snapshot_steps.
  bool goal_directed = true;
  /// Worker threads for the per-step valuation (1 = today's serial path,
  /// 0 = one per hardware thread). The per-step work is partitioned by
  /// rule — and, under semi-naive evaluation, by contiguous shards of the
  /// delta frontier — with results merged single-threaded in
  /// rule-then-valuation order, so the fixpoint (including invented oids
  /// and the non-commutative ⊕ composition) is byte-identical for every
  /// thread count. See DESIGN.md §9.
  size_t num_threads = 1;
};

struct EvalStats {
  /// One-step applications consumed, as counted by the ResourceGovernor
  /// (its steps_used(); the number the step budget is charged against).
  size_t steps = 0;
  size_t rule_firings = 0;
  size_t invented_oids = 0;
  size_t deletions = 0;
  /// Facts in the evaluation's result instance (TotalFacts — what the
  /// max_facts budget is compared to).
  size_t facts = 0;
  /// Approximate byte footprint of the result instance (what the
  /// max_bytes budget is compared to). Computed only when a byte budget
  /// is set; 0 otherwise.
  size_t bytes = 0;
  /// Wall-clock time the evaluation consumed, in microseconds.
  int64_t elapsed_micros = 0;
  /// Threads the evaluation ran with (EvalOptions::num_threads resolved;
  /// 1 = serial).
  size_t threads = 1;
  /// Interner observability (EvalOptions::intern_values; all 0 when
  /// interning was off): canonical nodes alive at the end of the run,
  /// constructions that found an existing node during the run, and bytes
  /// resident in live canonical nodes at the end of the run.
  size_t interner_nodes = 0;
  size_t interner_hits = 0;
  size_t interner_bytes = 0;
  /// Goal-directed (magic-set) observability, filled by the query paths
  /// when EvalOptions::goal_directed engaged the rewrite (all zero /
  /// empty otherwise): demand rules the rewrite added, magic-predicate
  /// tuples the evaluation derived (seeds included), and the size of the
  /// demanded cone relative to the extensional database —
  /// cone facts / edb facts, so values near (or above) 1 mean the goal
  /// was not selective and values near 0 mean the rewrite skipped most
  /// of the fixpoint. When the rewrite refused and evaluation fell back
  /// to the whole program, goal_directed_fallback holds the reason.
  size_t magic_rules = 0;
  size_t demand_facts = 0;
  double cone_fraction = 0;
  std::string goal_directed_fallback;
  /// Time spent enumerating/firing each rule, in microseconds, indexed by
  /// the rule's position in the analyzed program. Under parallel
  /// evaluation this sums the per-worker time of the rule's tasks, so it
  /// reads as CPU time rather than wall time.
  std::vector<int64_t> rule_micros;
};

/// \brief Evaluates analyzed programs over instances.
class Evaluator {
 public:
  /// \p gen supplies invented oids; it must be the database's generator so
  /// invented oids never collide with existing ones.
  Evaluator(const Schema& schema, const CheckedProgram& program,
            OidGenerator* gen)
      : schema_(schema), program_(program), gen_(gen) {}

  /// \brief Computes the instance: the fixpoint of the program applied to
  /// \p edb. The input is not modified.
  Result<Instance> Run(const Instance& edb,
                       const EvalOptions& options = {});

  const EvalStats& stats() const { return stats_; }

  /// \brief Answers a goal against a materialized instance: returns every
  /// binding of the goal's variables (projected to named variables).
  Result<std::vector<Bindings>> AnswerGoal(const Instance& instance,
                                           const Goal& goal) const;

 private:
  friend class RuleFirer;

  const Schema& schema_;
  const CheckedProgram& program_;
  OidGenerator* gen_;
  EvalStats stats_;

  // Invented-oid memo: (rule index, serialized body valuation) -> oid.
  std::map<std::pair<size_t, std::string>, Oid> invention_memo_;

  // Interner baselines captured at Run entry, so stats and the byte
  // budget report this evaluation's share of the process-wide interner.
  uint64_t intern_hits_base_ = 0;
  uint64_t intern_bytes_base_ = 0;

  Result<bool> RunStratum(const std::vector<const CheckedRule*>& rules,
                          Instance* instance, const EvalOptions& options,
                          ResourceGovernor* governor, ThreadPool* pool);
  /// Enforces Budget::max_bytes against the larger of the instance's
  /// logical footprint and the interner residency this evaluation added.
  Status CheckByteBudget(const Instance& instance,
                         ResourceGovernor* governor) const;
  Status CheckDenials(const Instance& instance) const;
};

/// \brief Grounds \p term under \p bindings against \p instance (exposed
/// for tests; data-function applications read their backing association).
Result<Value> EvalTerm(const Schema& schema, const CheckedProgram& program,
                       const Instance& instance, const TermPtr& term,
                       const Bindings& bindings);

/// \brief Matches pattern \p term against \p value, extending \p bindings.
/// Handles the oid coercions: a tuple variable bound to an object carries a
/// reserved "self" field; matching it against a bare oid compares oids.
Result<bool> MatchTerm(const Schema& schema, const CheckedProgram& program,
                       const Instance& instance, const TermPtr& term,
                       const Value& value, Bindings* bindings);

// kSelfLabel (the reserved tuple label carrying an object's oid when a
// tuple variable binds a whole object) lives in core/instance.h now, next
// to the index normalization that depends on it.

}  // namespace logres

#endif  // LOGRES_CORE_EVAL_H_
