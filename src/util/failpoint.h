// Deterministic fault injection (failpoints).
//
// Tests arm a named failpoint with a Status and a hit pattern; code under
// test declares injection sites with LOGRES_FAILPOINT("site.name"), which
// propagates the armed Status exactly as if the surrounding operation had
// failed there. This is how the transactional guarantee of module
// application is proven: inject a failure at any step/stratum/builtin
// boundary and assert the database state rolled back byte-identically.
//
// The facility is compiled in unconditionally but costs a single relaxed
// atomic load per site when nothing is armed, so production paths pay
// (essentially) nothing.
//
// Usage in a test:
//   ScopedFailpoint fp("eval.step", Status::ExecutionError("boom"),
//                      /*skip_hits=*/2);   // fail on the 3rd hit
//   ... exercise ...                        // sees the injected error
//
// Usage at an injection site:
//   LOGRES_FAILPOINT("eval.step");          // returns the armed Status

#ifndef LOGRES_UTIL_FAILPOINT_H_
#define LOGRES_UTIL_FAILPOINT_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace logres {
namespace failpoints {

/// \brief True when at least one failpoint is armed anywhere (the fast
/// path gate; relaxed atomic load).
bool AnyArmed();

/// \brief Arms \p name: the next Check(name) calls skip \p skip_hits
/// occurrences, then return \p status (repeatedly, until disarmed).
void Arm(const std::string& name, Status status, size_t skip_hits = 0);

/// \brief Exit code used by crash-armed failpoints (distinguishable from
/// an assertion failure or a sanitizer abort in the parent's waitpid).
inline constexpr int kCrashExitCode = 43;

/// \brief Arms \p name to *kill the process* (immediate _Exit, no flushes,
/// no destructors — the closest user-space stand-in for a crash) once the
/// site is reached after \p skip_hits occurrences. Used by the
/// crash-injection recovery tests, which fork a victim, arm a site, and
/// assert the reopened store recovered to a consistent state.
void ArmCrash(const std::string& name, size_t skip_hits = 0);

/// \brief Disarms \p name (no-op when not armed).
void Disarm(const std::string& name);

/// \brief Disarms everything.
void ClearAll();

/// \brief How many times Check(\p name) has been reached since it was
/// last armed (0 when not armed) — lets tests assert a site was hit.
size_t HitCount(const std::string& name);

/// \brief Slow path: returns the armed status for \p name or OK.
Status Check(const char* name);

}  // namespace failpoints

/// Declares an injection site. Expands to a Status-propagating check; use
/// only in functions returning Status or Result<T>.
#define LOGRES_FAILPOINT(name)                                  \
  do {                                                          \
    if (::logres::failpoints::AnyArmed()) {                     \
      LOGRES_RETURN_NOT_OK(::logres::failpoints::Check(name));  \
    }                                                           \
  } while (0)

/// \brief RAII arming for tests: disarms its failpoint on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, Status status, size_t skip_hits = 0)
      : name_(std::move(name)) {
    failpoints::Arm(name_, std::move(status), skip_hits);
  }
  ~ScopedFailpoint() { failpoints::Disarm(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  size_t hit_count() const { return failpoints::HitCount(name_); }

 private:
  std::string name_;
};

}  // namespace logres

#endif  // LOGRES_UTIL_FAILPOINT_H_
