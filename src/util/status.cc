#include "util/status.h"

namespace logres {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kSchemaError: return "SchemaError";
    case StatusCode::kConstraintViolation: return "ConstraintViolation";
    case StatusCode::kInconsistent: return "Inconsistent";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kUnsafeRule: return "UnsafeRule";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kExecutionError: return "ExecutionError";
    case StatusCode::kDivergence: return "Divergence";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace logres
