#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace logres {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  return JoinMapped(parts, sep, [](const std::string& s) { return s; });
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      if (start < text.size()) out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace logres
