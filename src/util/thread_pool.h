// A fixed-size worker pool for the parallel fixpoint engines.
//
// Design constraints (DESIGN.md §9):
//  * Deterministic: tasks are claimed off a shared atomic counter in index
//    order — no work stealing, no reordering. Callers build the task list
//    in the serial evaluation order and merge results by task index, so
//    the parallel composition is byte-identical to the serial one.
//  * Status/exception propagation: every task returns a Status; the batch
//    result is the status of the *lowest-indexed* failing task (so the
//    reported error does not depend on scheduling). Exceptions are
//    captured per task and rethrown on the calling thread, lowest index
//    first.
//  * Cooperative cancellation: an optional CancellationToken is consulted
//    before each task claim; once it fires, unclaimed tasks are skipped
//    with kCancelled. (In-flight tasks are expected to poll the shared
//    ResourceGovernor themselves — Run never preempts.)
//  * The calling thread participates: a pool of size N spawns N-1 workers
//    and drains the batch alongside them, so size 1 is exactly the serial
//    code path with no thread handoff at all.
//
// The pool is reusable across batches (one batch per fixpoint step); Run
// is not itself thread-safe — one coordinator drives the pool.

#ifndef LOGRES_UTIL_THREAD_POOL_H_
#define LOGRES_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/governor.h"
#include "util/status.h"

namespace logres {

class ThreadPool {
 public:
  using Task = std::function<Status()>;

  /// \brief Spawns `num_threads - 1` workers (the caller is the last
  /// lane). `num_threads <= 1` spawns none.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Total parallelism including the calling thread.
  size_t num_threads() const { return workers_.size() + 1; }

  /// \brief Runs every task and blocks until all have finished. See the
  /// header comment for the determinism / propagation contract.
  Status Run(std::vector<Task> tasks, const CancellationToken& cancel = {});

  /// \brief Maps an EvalOptions-style request to an actual thread count:
  /// 0 means "all hardware threads", anything else is taken literally
  /// (minimum 1).
  static size_t Resolve(size_t requested);

 private:
  struct Batch {
    std::vector<Task>* tasks = nullptr;
    std::vector<Status>* statuses = nullptr;
    std::vector<std::exception_ptr>* exceptions = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> remaining{0};
    CancellationToken cancel;
  };

  void WorkerLoop();
  void Drain(Batch* batch);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // the coordinator waits for drain
  std::shared_ptr<Batch> batch_;      // guarded by mu_
  uint64_t generation_ = 0;           // guarded by mu_
  bool shutdown_ = false;             // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace logres

#endif  // LOGRES_UTIL_THREAD_POOL_H_
