// Small string helpers shared across the LOGRES code base.

#ifndef LOGRES_UTIL_STRING_UTIL_H_
#define LOGRES_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace logres {

/// \brief Joins the elements of \p parts with \p sep between them.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// \brief Joins container elements after applying \p fn to each.
template <typename Container, typename Fn>
std::string JoinMapped(const Container& items, std::string_view sep, Fn fn) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    first = false;
    out += fn(item);
  }
  return out;
}

/// \brief Splits \p text on \p sep; never returns empty trailing pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// \brief Lower-cases ASCII characters.
std::string ToLower(std::string_view text);

/// \brief Upper-cases ASCII characters.
std::string ToUpper(std::string_view text);

/// \brief True if \p text starts with \p prefix.
bool StartsWith(std::string_view text, std::string_view prefix);

/// \brief True if \p text ends with \p suffix.
bool EndsWith(std::string_view text, std::string_view suffix);

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Streams all arguments into one string (absl::StrCat-alike).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// \brief Hash combiner (boost::hash_combine formula).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

}  // namespace logres

#endif  // LOGRES_UTIL_STRING_UTIL_H_
