// Status and Result<T>: error propagation without exceptions, in the style
// used by Apache Arrow and RocksDB. Library code returns Status (or
// Result<T>) instead of throwing; callers propagate with the
// LOGRES_RETURN_NOT_OK / LOGRES_ASSIGN_OR_RETURN macros.

#ifndef LOGRES_UTIL_STATUS_H_
#define LOGRES_UTIL_STATUS_H_

#include <cassert>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace logres {

/// \brief Machine-readable category of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kTypeError,         // static type checking failed
  kParseError,        // lexer/parser rejected input text
  kSchemaError,       // ill-formed schema / type equations
  kConstraintViolation,  // integrity constraint violated
  kInconsistent,      // database state or instance inconsistent
  kNotFound,          // named entity missing
  kAlreadyExists,     // duplicate definition
  kUnsafeRule,        // rule fails the safety requirements of Section 3.1
  kNotImplemented,
  kExecutionError,    // runtime evaluation failure
  kDivergence,        // fixpoint did not converge within the step budget
  kResourceExhausted, // wall-clock deadline or memory/fact budget breached
  kCancelled,         // cooperative cancellation was requested
  kUnavailable,       // storage I/O failed; the operation may succeed after
                      // the fault clears (degraded-mode writes return this)
};

/// \brief Human-readable name of a StatusCode ("TypeError", ...).
const char* StatusCodeName(StatusCode code);

/// \brief An operation outcome: OK, or an error code plus message.
///
/// Statuses are cheap to copy in the OK case (a single null pointer) and
/// carry a heap-allocated payload only on error.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SchemaError(std::string msg) {
    return Status(StatusCode::kSchemaError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status UnsafeRule(std::string msg) {
    return Status(StatusCode::kUnsafeRule, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Divergence(std::string msg) {
    return Status(StatusCode::kDivergence, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// \brief "OK" or "TypeError: <message>".
  std::string ToString() const;

  /// \brief Returns a copy with \p context prepended to the message.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status. Arrow-style.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : storage_(std::move(status)) {  // NOLINT implicit
    assert(!std::get<Status>(storage_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(storage_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value, or \p fallback on error.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> storage_;
};

#define LOGRES_CONCAT_IMPL(a, b) a##b
#define LOGRES_CONCAT(a, b) LOGRES_CONCAT_IMPL(a, b)

/// Propagates a non-OK Status to the caller.
#define LOGRES_RETURN_NOT_OK(expr)                    \
  do {                                                \
    ::logres::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (0)

/// Evaluates a Result expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define LOGRES_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define LOGRES_ASSIGN_OR_RETURN(lhs, expr) \
  LOGRES_ASSIGN_OR_RETURN_IMPL(LOGRES_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace logres

#endif  // LOGRES_UTIL_STATUS_H_
