// The storage I/O seam: every file operation the durable-state subsystem
// performs goes through an Io, so faults can be injected deterministically
// and the degraded-mode contract can be tested without a hostile kernel.
//
// Two implementations:
//
//   * PosixIo()  — the production singleton; thin Status-free wrappers over
//     the raw syscalls (open/read/write/fsync/rename/...), each returning
//     the syscall's value plus errno in an IoResult.
//   * FaultyIo   — wraps a base Io (PosixIo by default) and perturbs it
//     with (a) scripted faults, armed failpoint-style per operation with a
//     skip count and a repeat count, and (b) a seeded randomized schedule
//     drawing per-call faults from configured probabilities: errno
//     injections (ENOSPC, EIO, ...), EINTR storms, short writes and reads,
//     fsync/rename failure, and byte corruption on read (which subsumes
//     the hostile-dump truncation/byte-flip sweeps at the file layer).
//
// On top of the raw interface live the bounded-retry helpers WriteAll /
// ReadAll / SyncRetry: EINTR and short transfers are *transient* and retried
// in place (with bounded backoff, so an EINTR storm terminates); every
// other errno is *persistent* and surfaces as StatusCode::kUnavailable,
// which is what flips a JournaledDatabase into read-only degraded mode
// (journaled_database.h). Retry loops never retry a persistent error:
// ENOSPC does not go away by asking again.
//
// The interface is deliberately narrow and fd-based — one seam, everything
// funnels through it (the discipline of the Nix daemon's store interface).

#ifndef LOGRES_UTIL_IO_H_
#define LOGRES_UTIL_IO_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "util/status.h"

namespace logres {

/// \brief Outcome of one raw I/O operation: the syscall's return value
/// (fd, byte count, 0) and, when it failed, the errno.
struct IoResult {
  int64_t value = 0;
  int err = 0;  // 0 = success; otherwise the errno
  bool ok() const { return err == 0; }

  static IoResult Ok(int64_t value = 0) { return IoResult{value, 0}; }
  static IoResult Error(int err) { return IoResult{-1, err}; }
};

/// \brief The raw file-operation interface. Implementations mirror POSIX
/// semantics exactly: Read/Write may transfer fewer bytes than asked,
/// EINTR may interrupt anything, and nothing retries — policy (retry,
/// degradation) lives in the helpers and callers, not here.
class Io {
 public:
  virtual ~Io() = default;

  virtual IoResult Open(const std::string& path, int flags, int mode) = 0;
  virtual IoResult Close(int fd) = 0;
  virtual IoResult Read(int fd, void* buf, size_t count) = 0;
  virtual IoResult Write(int fd, const void* buf, size_t count) = 0;
  virtual IoResult Fsync(int fd) = 0;
  virtual IoResult Fdatasync(int fd) = 0;
  virtual IoResult Ftruncate(int fd, uint64_t size) = 0;
  virtual IoResult Lseek(int fd, int64_t offset, int whence) = 0;
  virtual IoResult Rename(const std::string& from, const std::string& to) = 0;
  virtual IoResult Unlink(const std::string& path) = 0;
  virtual IoResult Mkdir(const std::string& path, int mode) = 0;
  /// value: 1 when \p path exists, 0 when not; err set on other failures.
  virtual IoResult Exists(const std::string& path) = 0;
  /// Fills \p names with the entries of directory \p path ("." and ".."
  /// excluded), unsorted.
  virtual IoResult ListDir(const std::string& path,
                           std::vector<std::string>* names) = 0;
};

/// \brief The production implementation (process-wide singleton).
Io& PosixIo();

/// \brief True for errnos worth retrying in place (EINTR, EAGAIN); false
/// for persistent faults (ENOSPC, EIO, ...), which must surface.
bool IsTransientIoError(int err);

/// \brief Maps a failed IoResult to a Status: kUnavailable carrying the
/// operation and strerror text (persistent I/O faults are "unavailable":
/// the data is intact in memory, the disk is not accepting it).
Status IoErrorStatus(const IoResult& result, const std::string& what);

/// \brief Writes all \p size bytes, retrying transient failures (EINTR,
/// short writes that make progress) with bounded backoff. A persistent
/// errno, or a transient storm that exceeds the retry bound without
/// progress, returns kUnavailable. Guaranteed to terminate.
Status WriteAll(Io& io, int fd, const char* data, size_t size,
                const std::string& what);

/// \brief Reads until EOF with the same transient-retry policy.
Result<std::string> ReadAll(Io& io, int fd, const std::string& what);

/// \brief Reads the whole of \p path through \p io (open + ReadAll +
/// close). The scrub/fsck read path: strictly read-only, never touches
/// the file's size or position as seen by concurrent writers.
Result<std::string> ReadFileToString(Io& io, const std::string& path);

/// \brief Like ReadFileToString, but a missing file is not an error: it
/// yields an empty string with *\p exists set to false.
Result<std::string> ReadFileIfExists(Io& io, const std::string& path,
                                     bool* exists);

/// \brief fdatasync with transient-retry. A persistent failure is special:
/// per the fsync-failure rule ("fsyncgate"), the caller must from then on
/// treat the file tail as unverified — the kernel may have dropped the
/// dirty pages and cleared the error, so neither a retry nor the page
/// cache can be trusted. Callers re-verify by re-reading the file.
Status SyncRetry(Io& io, int fd, const std::string& what,
                 bool data_only = true);

/// \brief Consecutive no-progress transient retries before WriteAll /
/// ReadAll / SyncRetry give up (a storm longer than this is persistent in
/// practice; the bound is what makes the retry loops provably terminate).
inline constexpr size_t kMaxIoRetries = 64;

/// \brief Deterministic fault-injecting Io. Wraps a base Io; every
/// operation first consults the scripted faults, then the randomized
/// schedule, and only then reaches the base implementation.
///
/// Determinism: the randomized schedule is driven by one seeded PRNG that
/// consumes draws in call order, so a (seed, call sequence) pair always
/// produces the same faults — a failing soak iteration is reproducible
/// from its logged seed alone.
class FaultyIo : public Io {
 public:
  /// Which operation a scripted fault or a counter refers to.
  enum class Op {
    kOpen, kClose, kRead, kWrite, kFsync, kFdatasync, kFtruncate,
    kLseek, kRename, kUnlink, kMkdir, kExists, kListDir,
  };
  static constexpr size_t kOpCount = 13;

  /// Probabilities (each in [0,1]) for the randomized schedule; all zero
  /// by default, so a default-constructed config injects nothing.
  struct Config {
    uint64_t seed = 0;
    double p_write_error = 0;    // write fails with write_errno
    double p_short_write = 0;    // write transfers a strict prefix
    double p_read_error = 0;     // read fails with read_errno
    double p_short_read = 0;     // read transfers a strict prefix
    double p_read_corrupt = 0;   // read succeeds but bytes are flipped
    double p_eintr = 0;          // any interruptible op starts an EINTR
                                 // storm of 1..max_eintr_run calls
    double p_fsync_error = 0;    // fsync/fdatasync fails with fsync_errno
    double p_rename_error = 0;   // rename fails with rename_errno
    double p_open_error = 0;     // open fails with open_errno
    int write_errno = 28;        // ENOSPC
    int read_errno = 5;          // EIO
    int fsync_errno = 5;         // EIO
    int rename_errno = 5;        // EIO
    int open_errno = 5;          // EIO
    int max_eintr_run = 8;       // storm length bound
  };

  explicit FaultyIo(Config config, Io* base = nullptr);

  /// \brief Scripted fault, failpoint-style: after \p skip successful
  /// consultations of \p op, the next \p count calls fail with \p err.
  /// count = SIZE_MAX arms a *persistent* fault (until cleared) — the
  /// shape that drives a store into degraded mode.
  void InjectErrno(Op op, int err, size_t skip = 0, size_t count = SIZE_MAX);

  /// \brief Clears scripted faults only ("the disk came back") — the
  /// randomized schedule keeps running. Degraded-mode resume tests call
  /// this before Reopen.
  void ClearInjected();

  /// \brief Clears scripted faults and zeroes every probability.
  void ClearAll();

  /// \brief Total faults delivered (scripted + randomized), and per-op.
  size_t faults_injected() const { return faults_injected_; }
  size_t faults_for(Op op) const;
  /// \brief Raw calls observed per op (faulted or not).
  size_t calls_for(Op op) const;

  IoResult Open(const std::string& path, int flags, int mode) override;
  IoResult Close(int fd) override;
  IoResult Read(int fd, void* buf, size_t count) override;
  IoResult Write(int fd, const void* buf, size_t count) override;
  IoResult Fsync(int fd) override;
  IoResult Fdatasync(int fd) override;
  IoResult Ftruncate(int fd, uint64_t size) override;
  IoResult Lseek(int fd, int64_t offset, int whence) override;
  IoResult Rename(const std::string& from, const std::string& to) override;
  IoResult Unlink(const std::string& path) override;
  IoResult Mkdir(const std::string& path, int mode) override;
  IoResult Exists(const std::string& path) override;
  IoResult ListDir(const std::string& path,
                   std::vector<std::string>* names) override;

 private:
  struct Scripted {
    int err = 0;
    size_t skip = 0;   // remaining hits to let through
    size_t count = 0;  // remaining hits to fail
  };

  // Returns the errno to inject for this call of `op` (0 = none).
  // `interruptible` ops may additionally draw an EINTR storm.
  int NextFault(Op op, double p_error, int op_errno, bool interruptible);
  bool Draw(double p);

  Io* base_;
  Config config_;
  std::mt19937_64 rng_;
  std::map<Op, Scripted> scripted_;
  int eintr_run_ = 0;  // remaining calls of the current EINTR storm
  size_t faults_injected_ = 0;
  size_t fault_counts_[kOpCount] = {};
  size_t call_counts_[kOpCount] = {};
};

}  // namespace logres

#endif  // LOGRES_UTIL_IO_H_
