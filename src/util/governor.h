// The execution governor: budgets and cooperative cancellation for every
// evaluation path.
//
// The paper's module semantics (Section 5, Appendix B) define module
// application as an all-or-nothing transition between database states,
// but termination of the underlying fixpoint "is not guaranteed, and it
// is not even decidable". Operationally that means every fixpoint must be
// *bounded* (steps, wall-clock, derived facts) and *cancellable*, with a
// well-defined Status when a bound is hit:
//
//   * step budget exhausted          -> kDivergence        (both engines)
//   * deadline or fact budget breach -> kResourceExhausted
//   * cancellation requested         -> kCancelled
//
// A Budget travels with EvalOptions (and the ALGRES backend entry points)
// so the direct Evaluator and the compiled backend share one default
// instead of divergent per-engine constants. A ResourceGovernor is
// instantiated per evaluation from the Budget; its CheckStep() is called
// once per fixpoint step, so a breached budget or a cancellation is
// honored within one step.

#ifndef LOGRES_UTIL_GOVERNOR_H_
#define LOGRES_UTIL_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "util/status.h"

namespace logres {

/// \brief The shared step-budget default for every fixpoint engine.
inline constexpr size_t kDefaultMaxSteps = 100000;

/// \brief Read side of a cancellation flag. Copyable; copies observe the
/// same flag. A default-constructed token can never be cancelled.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief Write side: owns the flag, hands out tokens. Cancel() may be
/// called from another thread or a signal handler (the store is atomic
/// and lock-free).
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  void Reset() { flag_->store(false, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  CancellationToken token() const { return CancellationToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief Resource limits for one evaluation. Copyable and cheap; the
/// cancellation token shares its flag across copies.
struct Budget {
  /// Fixpoint steps before kDivergence (0 = unlimited).
  size_t max_steps = kDefaultMaxSteps;
  /// Wall-clock allowance before kResourceExhausted (nullopt = unlimited).
  /// A 0 ms timeout expires on the first step check.
  std::optional<std::chrono::milliseconds> timeout;
  /// Ceiling on total facts in the evolving instance before
  /// kResourceExhausted (0 = unlimited) — the derived-tuple/memory budget.
  size_t max_facts = 0;
  /// Ceiling on the approximate byte footprint of the evolving instance
  /// (0 = unlimited). Facts count rows; this bounds *payload* — a few
  /// huge strings or deep collections can exhaust memory at a tiny fact
  /// count. Sizing walks the instance (Instance::ApproxBytes), so the
  /// engines only compute it when a byte budget is actually set.
  size_t max_bytes = 0;
  /// Cooperative cancellation; checked at every step.
  CancellationToken cancel;

  static Budget Unlimited() {
    Budget b;
    b.max_steps = 0;
    return b;
  }

  /// \brief A sub-budget carving out \p fraction of this budget for one
  /// stratum (or any sub-evaluation): max_steps and timeout scale by the
  /// fraction (never below one step / one millisecond, so a tiny fraction
  /// still makes progress); the fact ceiling and the cancellation token
  /// are shared unscaled — facts are a property of the whole instance and
  /// cancellation must reach every stratum. Giving each stratum its own
  /// slice keeps one runaway stratum from draining the budget the later
  /// strata were counting on.
  Budget Substratum(double fraction) const {
    Budget sub = *this;
    if (max_steps > 0) {
      auto scaled = static_cast<size_t>(static_cast<double>(max_steps) *
                                        fraction);
      sub.max_steps = scaled > 0 ? scaled : 1;
    }
    if (timeout.has_value()) {
      auto scaled = static_cast<int64_t>(
          static_cast<double>(timeout->count()) * fraction);
      sub.timeout = std::chrono::milliseconds(scaled > 0 ? scaled : 1);
    }
    return sub;
  }
};

/// \brief Enforces a Budget over one evaluation. Construct when the
/// evaluation starts (the deadline is anchored then); call CheckStep()
/// once per fixpoint step and CheckFacts() after each state growth.
class ResourceGovernor {
 public:
  explicit ResourceGovernor(const Budget& budget);

  /// \brief Cancellation, deadline, then step budget; call at the top of
  /// every fixpoint step. Exhausting the step budget is kDivergence (the
  /// engines' historical contract); deadline breach is kResourceExhausted.
  Status CheckStep();

  /// \brief Cancellation and deadline only — for per-stratum or
  /// per-builtin boundaries that should not consume a step.
  Status CheckInterrupt() const;

  /// \brief kResourceExhausted when \p current_facts exceeds the fact
  /// budget.
  Status CheckFacts(size_t current_facts) const;

  /// \brief kResourceExhausted when \p current_bytes exceeds the byte
  /// budget.
  Status CheckBytes(size_t current_bytes) const;

  /// \brief True when a byte budget is set — callers gate the O(instance)
  /// ApproxBytes walk on this.
  bool wants_bytes() const { return budget_.max_bytes != 0; }

  size_t steps_used() const { return steps_used_; }

 private:
  Budget budget_;
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_ = false;
  size_t steps_used_ = 0;
};

}  // namespace logres

#endif  // LOGRES_UTIL_GOVERNOR_H_
