// CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over byte ranges.
//
// Used by the storage journal to checksum each record's payload so a torn
// or bit-flipped record is detected at recovery and the journal is
// truncated there instead of replaying garbage. Table-driven, no external
// dependency.

#ifndef LOGRES_UTIL_CRC32_H_
#define LOGRES_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace logres {

/// \brief CRC-32 of \p data, starting from \p seed (pass the previous
/// result to checksum data in chunks; 0 for a fresh computation).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(const std::string& data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace logres

#endif  // LOGRES_UTIL_CRC32_H_
