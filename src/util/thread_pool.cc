#include "util/thread_pool.h"

namespace logres {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t spawn = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(spawn);
  for (size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::Resolve(size_t requested) {
  if (requested == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }
  return requested;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    // Hold the batch via shared_ptr so a worker that wakes late (or claims
    // an out-of-range index just as the coordinator finishes) never touches
    // a destroyed batch.
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (batch_ != nullptr && seen_generation != generation_);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = batch_;
    }
    Drain(batch.get());
  }
}

void ThreadPool::Drain(Batch* batch) {
  size_t total = batch->tasks->size();
  for (;;) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= total) return;
    if (batch->cancel.cancelled()) {
      (*batch->statuses)[i] =
          Status::Cancelled("cancelled before the task started");
    } else {
      try {
        (*batch->statuses)[i] = (*batch->tasks)[i]();
      } catch (...) {
        (*batch->exceptions)[i] = std::current_exception();
      }
    }
    if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task in the batch: wake the coordinator. Taking the lock
      // orders this notify after the coordinator enters its wait.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

Status ThreadPool::Run(std::vector<Task> tasks,
                       const CancellationToken& cancel) {
  if (tasks.empty()) return Status::OK();
  std::vector<Status> statuses(tasks.size());
  std::vector<std::exception_ptr> exceptions(tasks.size());

  if (workers_.empty()) {
    // Serial lane: run in index order on the caller, same contract.
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (cancel.cancelled()) {
        statuses[i] = Status::Cancelled("cancelled before the task started");
        continue;
      }
      try {
        statuses[i] = tasks[i]();
      } catch (...) {
        exceptions[i] = std::current_exception();
      }
    }
  } else {
    auto batch = std::make_shared<Batch>();
    batch->tasks = &tasks;
    batch->statuses = &statuses;
    batch->exceptions = &exceptions;
    batch->remaining.store(tasks.size(), std::memory_order_relaxed);
    batch->cancel = cancel;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_ = batch;
      ++generation_;
    }
    work_cv_.notify_all();
    // The coordinator is one of the lanes.
    Drain(batch.get());
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return batch->remaining.load(std::memory_order_acquire) == 0;
      });
      batch_ = nullptr;
    }
  }

  for (const std::exception_ptr& e : exceptions) {
    if (e) std::rethrow_exception(e);
  }
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace logres
