#include "util/governor.h"

#include "util/string_util.h"

namespace logres {

ResourceGovernor::ResourceGovernor(const Budget& budget) : budget_(budget) {
  if (budget_.timeout.has_value()) {
    deadline_ = std::chrono::steady_clock::now() + *budget_.timeout;
    has_deadline_ = true;
  }
}

Status ResourceGovernor::CheckInterrupt() const {
  if (budget_.cancel.cancelled()) {
    return Status::Cancelled("evaluation cancelled");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Status::ResourceExhausted(
        StrCat("evaluation exceeded its ", budget_.timeout->count(),
               " ms deadline"));
  }
  return Status::OK();
}

Status ResourceGovernor::CheckStep() {
  LOGRES_RETURN_NOT_OK(CheckInterrupt());
  if (budget_.max_steps != 0 && steps_used_ >= budget_.max_steps) {
    return Status::Divergence(
        StrCat("fixpoint did not converge within ", budget_.max_steps,
               " steps"));
  }
  steps_used_++;
  return Status::OK();
}

Status ResourceGovernor::CheckFacts(size_t current_facts) const {
  if (budget_.max_facts != 0 && current_facts > budget_.max_facts) {
    return Status::ResourceExhausted(
        StrCat("instance grew to ", current_facts,
               " facts, exceeding the budget of ", budget_.max_facts));
  }
  return Status::OK();
}

Status ResourceGovernor::CheckBytes(size_t current_bytes) const {
  if (budget_.max_bytes != 0 && current_bytes > budget_.max_bytes) {
    return Status::ResourceExhausted(
        StrCat("instance grew to approximately ", current_bytes,
               " bytes, exceeding the budget of ", budget_.max_bytes));
  }
  return Status::OK();
}

}  // namespace logres
