#include "util/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

namespace logres {
namespace failpoints {

namespace {

struct Entry {
  Status status;
  size_t skip_hits = 0;
  size_t hits = 0;
  bool crash = false;
};

std::atomic<int> g_armed_count{0};

std::mutex& Mutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, Entry>& Registry() {
  static std::map<std::string, Entry> registry;
  return registry;
}

}  // namespace

bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

void Arm(const std::string& name, Status status, size_t skip_hits) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto [it, inserted] = Registry().insert_or_assign(
      name, Entry{std::move(status), skip_hits, 0, false});
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void ArmCrash(const std::string& name, size_t skip_hits) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto [it, inserted] = Registry().insert_or_assign(
      name,
      Entry{Status::ExecutionError("crash-armed failpoint"), skip_hits, 0,
            true});
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (Registry().erase(name) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ClearAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  g_armed_count.fetch_sub(static_cast<int>(Registry().size()),
                          std::memory_order_relaxed);
  Registry().clear();
}

size_t HitCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

Status Check(const char* name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  if (it == Registry().end()) return Status::OK();
  Entry& entry = it->second;
  entry.hits++;
  if (entry.hits <= entry.skip_hits) return Status::OK();
  // A crash-armed site dies on the spot: no stream flushes, no atexit
  // handlers, no destructors — pending unsynced writes are simply lost to
  // this process (the page cache keeps what was already write()n, exactly
  // like a real process crash).
  if (entry.crash) std::_Exit(kCrashExitCode);
  return entry.status;
}

}  // namespace failpoints
}  // namespace logres
