#include "util/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/string_util.h"

namespace logres {

namespace {

IoResult FromSyscall(int64_t rc) {
  if (rc < 0) return IoResult::Error(errno);
  return IoResult::Ok(rc);
}

class PosixIoImpl : public Io {
 public:
  IoResult Open(const std::string& path, int flags, int mode) override {
    return FromSyscall(::open(path.c_str(), flags, mode));
  }
  IoResult Close(int fd) override { return FromSyscall(::close(fd)); }
  IoResult Read(int fd, void* buf, size_t count) override {
    return FromSyscall(::read(fd, buf, count));
  }
  IoResult Write(int fd, const void* buf, size_t count) override {
    return FromSyscall(::write(fd, buf, count));
  }
  IoResult Fsync(int fd) override { return FromSyscall(::fsync(fd)); }
  IoResult Fdatasync(int fd) override {
    return FromSyscall(::fdatasync(fd));
  }
  IoResult Ftruncate(int fd, uint64_t size) override {
    return FromSyscall(::ftruncate(fd, static_cast<off_t>(size)));
  }
  IoResult Lseek(int fd, int64_t offset, int whence) override {
    return FromSyscall(::lseek(fd, static_cast<off_t>(offset), whence));
  }
  IoResult Rename(const std::string& from, const std::string& to) override {
    return FromSyscall(::rename(from.c_str(), to.c_str()));
  }
  IoResult Unlink(const std::string& path) override {
    return FromSyscall(::unlink(path.c_str()));
  }
  IoResult Mkdir(const std::string& path, int mode) override {
    return FromSyscall(::mkdir(path.c_str(), static_cast<mode_t>(mode)));
  }
  IoResult Exists(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) return IoResult::Ok(1);
    if (errno == ENOENT || errno == ENOTDIR) return IoResult::Ok(0);
    return IoResult::Error(errno);
  }
  IoResult ListDir(const std::string& path,
                   std::vector<std::string>* names) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return IoResult::Error(errno);
    names->clear();
    errno = 0;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names->push_back(std::move(name));
    }
    int err = errno;
    ::closedir(dir);
    if (err != 0) return IoResult::Error(err);
    return IoResult::Ok(static_cast<int64_t>(names->size()));
  }
};

}  // namespace

Io& PosixIo() {
  static PosixIoImpl posix;
  return posix;
}

bool IsTransientIoError(int err) { return err == EINTR || err == EAGAIN; }

Status IoErrorStatus(const IoResult& result, const std::string& what) {
  return Status::Unavailable(
      StrCat(what, ": ", std::strerror(result.err)));
}

namespace {

// Bounded backoff between no-progress transient retries: free for the
// first few (EINTR normally clears immediately), then short sleeps so a
// storm does not busy-spin. Total worst-case sleep across kMaxIoRetries
// attempts stays well under 100 ms.
void Backoff(size_t attempt) {
  if (attempt < 8) return;
  size_t shift = attempt - 8 < 10 ? attempt - 8 : 10;
  std::this_thread::sleep_for(std::chrono::microseconds(1u << shift));
}

}  // namespace

Status WriteAll(Io& io, int fd, const char* data, size_t size,
                const std::string& what) {
  size_t written = 0;
  size_t stalled = 0;  // consecutive attempts without progress
  while (written < size) {
    IoResult r = io.Write(fd, data + written, size - written);
    if (!r.ok()) {
      if (IsTransientIoError(r.err) && stalled < kMaxIoRetries) {
        Backoff(stalled++);
        continue;
      }
      return IoErrorStatus(r, what);
    }
    if (r.value == 0) {
      // A 0-byte write is a stall, not progress; bounded like EINTR.
      if (stalled >= kMaxIoRetries) {
        return Status::Unavailable(StrCat(what, ": write made no progress"));
      }
      Backoff(stalled++);
      continue;
    }
    written += static_cast<size_t>(r.value);
    stalled = 0;  // a short write that advanced is plain progress
  }
  return Status::OK();
}

Result<std::string> ReadAll(Io& io, int fd, const std::string& what) {
  std::string out;
  char buf[1 << 16];
  size_t stalled = 0;
  for (;;) {
    IoResult r = io.Read(fd, buf, sizeof(buf));
    if (!r.ok()) {
      if (IsTransientIoError(r.err) && stalled < kMaxIoRetries) {
        Backoff(stalled++);
        continue;
      }
      return IoErrorStatus(r, what);
    }
    if (r.value == 0) break;  // EOF
    out.append(buf, static_cast<size_t>(r.value));
    stalled = 0;
  }
  return out;
}

Result<std::string> ReadFileToString(Io& io, const std::string& path) {
  IoResult fd = io.Open(path, O_RDONLY, 0);
  if (!fd.ok()) return IoErrorStatus(fd, StrCat("open ", path));
  auto data = ReadAll(io, static_cast<int>(fd.value), StrCat("read ", path));
  (void)io.Close(static_cast<int>(fd.value));
  return data;
}

Result<std::string> ReadFileIfExists(Io& io, const std::string& path,
                                     bool* exists) {
  *exists = true;
  IoResult fd = io.Open(path, O_RDONLY, 0);
  if (!fd.ok()) {
    if (fd.err == ENOENT) {
      *exists = false;
      return std::string();
    }
    return IoErrorStatus(fd, StrCat("open ", path));
  }
  auto data = ReadAll(io, static_cast<int>(fd.value), StrCat("read ", path));
  (void)io.Close(static_cast<int>(fd.value));
  return data;
}

Status SyncRetry(Io& io, int fd, const std::string& what, bool data_only) {
  size_t stalled = 0;
  for (;;) {
    IoResult r = data_only ? io.Fdatasync(fd) : io.Fsync(fd);
    if (r.ok()) return Status::OK();
    if (IsTransientIoError(r.err) && stalled < kMaxIoRetries) {
      Backoff(stalled++);
      continue;
    }
    return IoErrorStatus(r, what);
  }
}

// ---------------------------------------------------------------------------
// FaultyIo

FaultyIo::FaultyIo(Config config, Io* base)
    : base_(base != nullptr ? base : &PosixIo()),
      config_(config),
      rng_(config.seed) {}

void FaultyIo::InjectErrno(Op op, int err, size_t skip, size_t count) {
  scripted_[op] = Scripted{err, skip, count};
}

void FaultyIo::ClearInjected() { scripted_.clear(); }

void FaultyIo::ClearAll() {
  scripted_.clear();
  uint64_t seed = config_.seed;
  config_ = Config{};
  config_.seed = seed;
  eintr_run_ = 0;
}

size_t FaultyIo::faults_for(Op op) const {
  return fault_counts_[static_cast<size_t>(op)];
}

size_t FaultyIo::calls_for(Op op) const {
  return call_counts_[static_cast<size_t>(op)];
}

bool FaultyIo::Draw(double p) {
  if (p <= 0) return false;
  return std::uniform_real_distribution<double>(0, 1)(rng_) < p;
}

int FaultyIo::NextFault(Op op, double p_error, int op_errno,
                        bool interruptible) {
  call_counts_[static_cast<size_t>(op)]++;
  // Scripted faults take precedence and consume no randomness, so a test
  // can overlay a precise fault on top of a randomized schedule.
  auto it = scripted_.find(op);
  if (it != scripted_.end()) {
    Scripted& s = it->second;
    if (s.skip > 0) {
      s.skip--;
    } else if (s.count > 0) {
      if (s.count != SIZE_MAX) s.count--;
      faults_injected_++;
      fault_counts_[static_cast<size_t>(op)]++;
      return s.err;
    }
  }
  if (interruptible) {
    if (eintr_run_ > 0) {
      eintr_run_--;
      faults_injected_++;
      fault_counts_[static_cast<size_t>(op)]++;
      return EINTR;
    }
    if (Draw(config_.p_eintr)) {
      int run = 1;
      if (config_.max_eintr_run > 1) {
        run = 1 + static_cast<int>(rng_() %
                                   static_cast<uint64_t>(
                                       config_.max_eintr_run));
      }
      eintr_run_ = run - 1;
      faults_injected_++;
      fault_counts_[static_cast<size_t>(op)]++;
      return EINTR;
    }
  }
  if (Draw(p_error)) {
    faults_injected_++;
    fault_counts_[static_cast<size_t>(op)]++;
    return op_errno;
  }
  return 0;
}

IoResult FaultyIo::Open(const std::string& path, int flags, int mode) {
  int err = NextFault(Op::kOpen, config_.p_open_error, config_.open_errno,
                      /*interruptible=*/true);
  if (err != 0) return IoResult::Error(err);
  return base_->Open(path, flags, mode);
}

IoResult FaultyIo::Close(int fd) {
  int err = NextFault(Op::kClose, 0, 0, /*interruptible=*/false);
  if (err != 0) return IoResult::Error(err);
  return base_->Close(fd);
}

IoResult FaultyIo::Read(int fd, void* buf, size_t count) {
  int err = NextFault(Op::kRead, config_.p_read_error, config_.read_errno,
                      /*interruptible=*/true);
  if (err != 0) return IoResult::Error(err);
  size_t ask = count;
  bool short_read = count > 1 && Draw(config_.p_short_read);
  if (short_read) {
    ask = 1 + static_cast<size_t>(rng_() % (count - 1));
    faults_injected_++;
    fault_counts_[static_cast<size_t>(Op::kRead)]++;
  }
  IoResult r = base_->Read(fd, buf, ask);
  if (r.ok() && r.value > 0 && Draw(config_.p_read_corrupt)) {
    // Flip one byte of what was actually read: at the caller this is
    // indistinguishable from media corruption, and the CRC/parse layers
    // above must catch it.
    auto* bytes = static_cast<unsigned char*>(buf);
    size_t pos = static_cast<size_t>(rng_() %
                                     static_cast<uint64_t>(r.value));
    unsigned char flip = static_cast<unsigned char>(1 + rng_() % 255);
    bytes[pos] ^= flip;
    faults_injected_++;
    fault_counts_[static_cast<size_t>(Op::kRead)]++;
  }
  return r;
}

IoResult FaultyIo::Write(int fd, const void* buf, size_t count) {
  int err = NextFault(Op::kWrite, config_.p_write_error,
                      config_.write_errno, /*interruptible=*/true);
  if (err != 0) return IoResult::Error(err);
  size_t ask = count;
  if (count > 1 && Draw(config_.p_short_write)) {
    // Transfer a strict prefix; the bytes written are real (they land in
    // the base file), exactly like a short write from a full pipe or a
    // signal-interrupted transfer.
    ask = 1 + static_cast<size_t>(rng_() % (count - 1));
    faults_injected_++;
    fault_counts_[static_cast<size_t>(Op::kWrite)]++;
  }
  return base_->Write(fd, buf, ask);
}

IoResult FaultyIo::Fsync(int fd) {
  int err = NextFault(Op::kFsync, config_.p_fsync_error,
                      config_.fsync_errno, /*interruptible=*/true);
  if (err != 0) return IoResult::Error(err);
  return base_->Fsync(fd);
}

IoResult FaultyIo::Fdatasync(int fd) {
  int err = NextFault(Op::kFdatasync, config_.p_fsync_error,
                      config_.fsync_errno, /*interruptible=*/true);
  if (err != 0) return IoResult::Error(err);
  return base_->Fdatasync(fd);
}

IoResult FaultyIo::Ftruncate(int fd, uint64_t size) {
  int err = NextFault(Op::kFtruncate, 0, 0, /*interruptible=*/true);
  if (err != 0) return IoResult::Error(err);
  return base_->Ftruncate(fd, size);
}

IoResult FaultyIo::Lseek(int fd, int64_t offset, int whence) {
  int err = NextFault(Op::kLseek, 0, 0, /*interruptible=*/false);
  if (err != 0) return IoResult::Error(err);
  return base_->Lseek(fd, offset, whence);
}

IoResult FaultyIo::Rename(const std::string& from, const std::string& to) {
  int err = NextFault(Op::kRename, config_.p_rename_error,
                      config_.rename_errno, /*interruptible=*/false);
  if (err != 0) return IoResult::Error(err);
  return base_->Rename(from, to);
}

IoResult FaultyIo::Unlink(const std::string& path) {
  int err = NextFault(Op::kUnlink, 0, 0, /*interruptible=*/false);
  if (err != 0) return IoResult::Error(err);
  return base_->Unlink(path);
}

IoResult FaultyIo::Mkdir(const std::string& path, int mode) {
  int err = NextFault(Op::kMkdir, 0, 0, /*interruptible=*/false);
  if (err != 0) return IoResult::Error(err);
  return base_->Mkdir(path, mode);
}

IoResult FaultyIo::Exists(const std::string& path) {
  int err = NextFault(Op::kExists, 0, 0, /*interruptible=*/false);
  if (err != 0) return IoResult::Error(err);
  return base_->Exists(path);
}

IoResult FaultyIo::ListDir(const std::string& path,
                           std::vector<std::string>* names) {
  int err = NextFault(Op::kListDir, 0, 0, /*interruptible=*/false);
  if (err != 0) return IoResult::Error(err);
  return base_->ListDir(path, names);
}

}  // namespace logres
