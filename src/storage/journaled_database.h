// Durable LOGRES state: checkpoints + write-ahead journal + recovery.
//
// A JournaledDatabase wraps a Database with the on-disk layout
//
//   <dir>/CHECKPOINT       -- "-- logres checkpoint seq=<N>" + DumpDatabase
//   <dir>/CHECKPOINT.tmp   -- transient; atomically renamed over CHECKPOINT
//   <dir>/journal          -- append-only log of committed applications
//
// and gives module application the same all-or-nothing guarantee *across
// process death* that Database::Apply already gives in process:
//
//   apply:      run the (in-process transactional) Apply; on success,
//               append the record and fsync it BEFORE acknowledging the
//               commit. If the append fails, the in-memory state is
//               rolled back too, so memory never runs ahead of disk.
//   checkpoint: write "-- logres checkpoint seq=N" + the dump to
//               CHECKPOINT.tmp, fsync, atomically rename over CHECKPOINT,
//               fsync the directory, then empty the journal. Taken
//               automatically every StorageOptions::checkpoint_interval
//               commits (0 disables) or on demand.
//   recovery:   load the newest valid CHECKPOINT, truncate the journal at
//               the first torn/corrupt record (warning, not error), and
//               deterministically replay every record with seq >
//               checkpoint seq — fast-forwarding the oid generator to
//               each record's gen_before so invented oids come out
//               byte-identical, and cross-checking gen_after. Records
//               with seq <= checkpoint seq are skipped: they cover the
//               window where a crash hit between the checkpoint rename
//               and the journal reset.
//
// Deliberately NOT durable: modules registered at Create time (dumps do
// not carry `module` blocks; journal `apply` records carry their own
// source), the EvalOptions/Budget a commit ran under (replay uses an
// unlimited budget — a commit that terminated once terminates again),
// and oids consumed by *rejected* applications after the last commit
// (the state triple is unaffected; gen_before fast-forwarding re-creates
// the gaps that precede each commit).
//
// Failpoint sites, in write order: journal.append, journal.fsync,
// checkpoint.write, checkpoint.rename, checkpoint.truncate. The
// crash-injection matrix (tests/storage_crash_test.cc) kills the process
// at each and asserts the reopened store equals exactly the pre- or
// post-application dump, never a hybrid.

#ifndef LOGRES_STORAGE_JOURNALED_DATABASE_H_
#define LOGRES_STORAGE_JOURNALED_DATABASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/dump.h"
#include "storage/journal.h"
#include "util/status.h"

namespace logres {

struct StorageOptions {
  /// Auto-checkpoint after this many committed applications since the
  /// last checkpoint (0 = only explicit Checkpoint() calls).
  uint64_t checkpoint_interval = 64;
};

/// \brief Observable state of the store (`journal status` in the shell).
struct StorageStatus {
  uint64_t last_seq = 0;        // seq of the newest committed application
  uint64_t checkpoint_seq = 0;  // seq the CHECKPOINT file covers
  uint64_t journal_records = 0;  // live records in the journal file
  uint64_t journal_bytes = 0;
  uint64_t replayed_at_open = 0;
  uint64_t truncated_bytes_at_open = 0;
  /// Cumulative evaluator steps and last result-instance fact count over
  /// the commits this process made (from ModuleResult::stats).
  uint64_t steps_total = 0;
  uint64_t facts_last = 0;
  /// Recovery/auto-checkpoint warnings (torn records, skipped stale
  /// records, failed background checkpoints).
  std::vector<std::string> warnings;
};

/// \brief A Database whose committed module applications survive process
/// death. Move-only (owns the journal file descriptor).
class JournaledDatabase {
 public:
  /// \brief Initializes a new store at \p dir (created if missing) from
  /// an in-memory database: writes the initial checkpoint (seq 0) and an
  /// empty journal. Fails if \p dir already holds a store.
  static Result<JournaledDatabase> Create(const std::string& dir,
                                          Database db,
                                          StorageOptions options = {});

  /// \brief Convenience: Create from LOGRES source text.
  static Result<JournaledDatabase> Create(const std::string& dir,
                                          const std::string& source,
                                          StorageOptions options = {});

  /// \brief Opens an existing store, running recovery (checkpoint load +
  /// journal truncation + deterministic replay).
  static Result<JournaledDatabase> Open(const std::string& dir,
                                        StorageOptions options = {});

  JournaledDatabase(JournaledDatabase&&) = default;
  JournaledDatabase& operator=(JournaledDatabase&&) = default;

  /// \brief The wrapped database. Reads (Query/Materialize/...) go
  /// straight through; direct mutation bypasses the journal and is NOT
  /// durable — use ApplySource for anything that must survive.
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// \brief Applies a module durably: Database::ApplySource, then journal
  /// append + fsync. Only acknowledged (OK) commits are durable.
  Result<ModuleResult> ApplySource(const std::string& source,
                                   ApplicationMode mode,
                                   const EvalOptions& options = {});

  /// \brief Writes a checkpoint covering every commit so far and empties
  /// the journal.
  Status Checkpoint();

  const std::string& dir() const { return dir_; }
  StorageStatus status() const;

 private:
  JournaledDatabase(std::string dir, Database db, Journal journal,
                    StorageOptions options)
      : dir_(std::move(dir)),
        db_(std::move(db)),
        journal_(std::move(journal)),
        options_(options) {}

  Status WriteCheckpoint();

  std::string dir_;
  Database db_;
  Journal journal_;
  StorageOptions options_;
  uint64_t last_seq_ = 0;
  uint64_t checkpoint_seq_ = 0;
  uint64_t replayed_at_open_ = 0;
  uint64_t steps_total_ = 0;
  uint64_t facts_last_ = 0;
  std::vector<std::string> warnings_;
};

}  // namespace logres

#endif  // LOGRES_STORAGE_JOURNALED_DATABASE_H_
