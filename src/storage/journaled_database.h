// Durable LOGRES state: checkpoints + write-ahead journal + recovery.
//
// A JournaledDatabase wraps a Database with the on-disk layout
//
//   <dir>/CHECKPOINT         -- "-- logres checkpoint seq=<N>" + DumpDatabase
//   <dir>/CHECKPOINT.tmp     -- transient; atomically renamed over CHECKPOINT
//   <dir>/journal            -- append-only log of committed applications
//   <dir>/journal.<N>.old    -- rotated journals (records covered by the
//                               checkpoint with seq N); bounded keep-count
//
// and gives module application the same all-or-nothing guarantee *across
// process death* that Database::Apply already gives in process:
//
//   apply:      run the (in-process transactional) Apply; on success,
//               append the record and fsync it BEFORE acknowledging the
//               commit. If the append fails, the in-memory state is
//               rolled back too, so memory never runs ahead of disk.
//   checkpoint: write "-- logres checkpoint seq=N" + the dump to
//               CHECKPOINT.tmp, fsync, atomically rename over CHECKPOINT,
//               fsync the directory, then rotate the journal aside (or
//               empty it when rotated_journals_keep is 0). Taken
//               automatically every StorageOptions::checkpoint_interval
//               commits (0 disables) or on demand.
//   recovery:   load the newest valid CHECKPOINT, truncate the journal at
//               the first torn/corrupt record (warning, not error), and
//               deterministically replay every record with seq >
//               checkpoint seq — fast-forwarding the oid generator to
//               each record's gen_before so invented oids come out
//               byte-identical, and cross-checking gen_after. Records
//               with seq <= checkpoint seq are skipped: they cover the
//               window where a crash hit between the checkpoint rename
//               and the journal rotation.
//
// Every file operation goes through the Io seam (util/io.h):
// StorageOptions::io injects a FaultyIo for testing; production uses
// PosixIo. On top of the seam sits the graceful-degradation contract:
//
//   * Transient faults (EINTR, short writes) are retried in place with
//     bounded backoff inside WriteAll/ReadAll/SyncRetry — invisible here.
//   * A persistent fault on the journal append/fsync path (kUnavailable)
//     rolls the application back and flips the store into read-only
//     DEGRADED mode: queries keep working against the in-memory state,
//     every later ApplySource/Checkpoint is refused with kUnavailable
//     carrying the root cause, and `journal status` reports DEGRADED.
//   * Reopen() attempts recovery-and-resume: it re-runs full Open()
//     recovery (re-reading the on-disk tail — after an fsync failure the
//     page cache must not be trusted, so re-verification is a fresh scan)
//     and resumes only if the recovered state covers every acknowledged
//     commit; otherwise the store stays degraded with the durability gap
//     reported. The journal itself enforces the same rule locally via
//     Journal::tail_suspect().
//
// Deliberately NOT durable: the EvalOptions/Budget a commit ran under
// (replay uses an unlimited budget — a commit that terminated once
// terminates again), and oids consumed by *rejected* applications after
// the last commit (the state triple is unaffected; gen_before
// fast-forwarding re-creates the gaps that precede each commit). Modules
// registered at Create time ARE durable: dumps carry `module` blocks
// (dump format v2), so ApplyByName keeps working after recovery.
//
// Failpoint sites, in write order: journal.append, journal.fsync,
// checkpoint.write, checkpoint.rename, checkpoint.truncate. The
// crash-injection matrix (tests/storage_crash_test.cc) kills the process
// at each and asserts the reopened store equals exactly the pre- or
// post-application dump, never a hybrid.

#ifndef LOGRES_STORAGE_JOURNALED_DATABASE_H_
#define LOGRES_STORAGE_JOURNALED_DATABASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/dump.h"
#include "storage/journal.h"
#include "util/io.h"
#include "util/status.h"

namespace logres {

struct StorageOptions {
  /// Auto-checkpoint after this many committed applications since the
  /// last checkpoint (0 = only explicit Checkpoint() calls).
  uint64_t checkpoint_interval = 64;
  /// Rotated journals to keep (journal.<seq>.old); 0 = no rotation, the
  /// journal is emptied in place after a checkpoint (the pre-rotation
  /// behaviour).
  uint64_t rotated_journals_keep = 3;
  /// File operations go through this (PosixIo when null). The pointer is
  /// borrowed; it must outlive the store. Tests inject a FaultyIo here.
  Io* io = nullptr;
};

/// \brief Observable state of the store (`journal status` in the shell).
struct StorageStatus {
  uint64_t last_seq = 0;        // seq of the newest committed application
  uint64_t checkpoint_seq = 0;  // seq the CHECKPOINT file covers
  uint64_t journal_records = 0;  // live records in the journal file
  uint64_t journal_bytes = 0;
  uint64_t replayed_at_open = 0;
  uint64_t truncated_bytes_at_open = 0;
  /// Rotated journal files currently kept on disk.
  uint64_t rotated_journals = 0;
  /// Cumulative evaluator steps and last result-instance fact count over
  /// the commits this process made (from ModuleResult::stats).
  uint64_t steps_total = 0;
  uint64_t facts_last = 0;
  /// Read-only degraded mode: writes are refused (kUnavailable, carrying
  /// degraded_reason), reads keep working. Reopen() to recover.
  bool degraded = false;
  std::string degraded_reason;
  /// Recovery/auto-checkpoint warnings (torn records, skipped stale
  /// records, failed background checkpoints, degradation events).
  std::vector<std::string> warnings;
};

/// \brief A Database whose committed module applications survive process
/// death. Move-only (owns the journal file descriptor).
class JournaledDatabase {
 public:
  /// \brief Initializes a new store at \p dir (created if missing) from
  /// an in-memory database: writes the initial checkpoint (seq 0) and an
  /// empty journal. Fails if \p dir already holds a store.
  static Result<JournaledDatabase> Create(const std::string& dir,
                                          Database db,
                                          StorageOptions options = {});

  /// \brief Convenience: Create from LOGRES source text.
  static Result<JournaledDatabase> Create(const std::string& dir,
                                          const std::string& source,
                                          StorageOptions options = {});

  /// \brief Opens an existing store, running recovery (checkpoint load +
  /// journal truncation + deterministic replay).
  static Result<JournaledDatabase> Open(const std::string& dir,
                                        StorageOptions options = {});

  JournaledDatabase(JournaledDatabase&&) = default;
  JournaledDatabase& operator=(JournaledDatabase&&) = default;

  /// \brief The wrapped database. Reads (Query/Materialize/...) go
  /// straight through — including while degraded; direct mutation
  /// bypasses the journal and is NOT durable — use ApplySource for
  /// anything that must survive.
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// \brief Applies a module durably: Database::ApplySource, then journal
  /// append + fsync. Only acknowledged (OK) commits are durable. While
  /// degraded, refused up front with kUnavailable (the state is not
  /// touched and no oids are consumed); a persistent I/O fault during the
  /// append rolls the application back AND enters degraded mode.
  Result<ModuleResult> ApplySource(const std::string& source,
                                   ApplicationMode mode,
                                   const EvalOptions& options = {});

  /// \brief Applies a registered module by name (under its default mode),
  /// durably: the journal record carries the module's own serialized
  /// source (ModuleToSource), so replay never depends on the registry.
  Result<ModuleResult> ApplyByName(const std::string& name,
                                   const EvalOptions& options = {});

  /// \brief Writes a checkpoint covering every commit so far, then
  /// rotates the journal aside (pruning rotated files beyond the
  /// keep-count) or empties it when rotation is disabled.
  Status Checkpoint();

  /// \brief Recovery-and-resume after degradation (also safe when
  /// healthy): re-runs full Open() recovery against the on-disk state —
  /// a fresh scan, never trusting the page cache — and swaps it in if it
  /// covers every commit this store has acknowledged. On success the
  /// store is writable again; on failure it stays degraded and returns
  /// why. Session counters (steps_total) and warnings are preserved.
  Status Reopen();

  /// \brief True while in read-only degraded mode.
  bool degraded() const { return degraded_; }
  /// \brief The root-cause fault that triggered degradation (OK when
  /// healthy).
  const Status& degraded_reason() const { return degraded_reason_; }

  const std::string& dir() const { return dir_; }
  StorageStatus status() const;

 private:
  JournaledDatabase(std::string dir, Database db, Journal journal,
                    StorageOptions options, Io* io)
      : dir_(std::move(dir)),
        db_(std::move(db)),
        journal_(std::move(journal)),
        options_(options),
        io_(io) {}

  Status WriteCheckpoint();
  // Moves the live journal to journal.<checkpoint_seq_>.old and starts a
  // fresh one; prunes rotated files beyond the keep-count.
  Status RotateJournal();
  void PruneRotatedJournals();
  // Enters degraded mode if `failure` is a persistent I/O fault
  // (kUnavailable); returns `failure` either way.
  Status NoteFailure(Status failure);

  std::string dir_;
  Database db_;
  Journal journal_;
  StorageOptions options_;
  Io* io_ = nullptr;  // resolved from options_.io; never null
  uint64_t last_seq_ = 0;
  uint64_t checkpoint_seq_ = 0;
  uint64_t replayed_at_open_ = 0;
  uint64_t rotated_journals_ = 0;
  uint64_t steps_total_ = 0;
  uint64_t facts_last_ = 0;
  bool degraded_ = false;
  Status degraded_reason_;
  std::vector<std::string> warnings_;
};

}  // namespace logres

#endif  // LOGRES_STORAGE_JOURNALED_DATABASE_H_
