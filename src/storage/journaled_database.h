// Durable LOGRES state: checkpoints + write-ahead journal + recovery.
//
// A JournaledDatabase wraps a Database with the on-disk layout
//
//   <dir>/CHECKPOINT          -- self-verifying checkpoint (format v2:
//                                header + DumpDatabase + CRC-32 footer;
//                                see storage/checkpoint.h)
//   <dir>/CHECKPOINT.tmp      -- transient; atomically renamed over
//                                CHECKPOINT
//   <dir>/CHECKPOINT.<N>.old  -- retained checkpoint generations (the
//                                checkpoint that covered seq N); bounded
//                                keep-count, pruned in lockstep with
//                                rotated journals
//   <dir>/journal             -- append-only log of committed applications
//   <dir>/journal.<N>.old     -- rotated journals (records covered by the
//                                checkpoint with seq N); bounded keep-count
//
// and gives module application the same all-or-nothing guarantee *across
// process death* that Database::Apply already gives in process:
//
//   apply:      run the (in-process transactional) Apply; on success,
//               append the record and fsync it BEFORE acknowledging the
//               commit. If the append fails, the in-memory state is
//               rolled back too, so memory never runs ahead of disk.
//   checkpoint: write the v2 envelope to CHECKPOINT.tmp, fsync, retain
//               the outgoing CHECKPOINT as CHECKPOINT.<seq>.old,
//               atomically rename the tmp over CHECKPOINT, fsync the
//               directory, then rotate the journal aside (or empty it
//               when rotated_journals_keep is 0) and prune generations
//               and rotated journals past the keep-count together. Taken
//               automatically every StorageOptions::checkpoint_interval
//               commits (0 disables) or on demand.
//   recovery:   an escalation ladder. Open() tries CHECKPOINT first; if
//               it is missing, truncated, or fails its CRC, it falls back
//               to the newest CHECKPOINT.<N>.old that verifies, and so on
//               down the generations. Whichever generation loads, the
//               journal *chain* past it — every rotated journal.<M>.old
//               with M > N, oldest first, then the live journal (torn
//               tail truncated first, warning not error) — is replayed
//               deterministically: records with seq <= the running seq
//               are skipped (the crash window between checkpoint rename
//               and journal rotation), the oid generator is
//               fast-forwarded to each record's gen_before so invented
//               oids come out byte-identical, and gen_after is
//               cross-checked. Falling back is a *warning* naming the
//               generation and depth, never an error: as long as one
//               generation verifies, the store opens.
//
//               If the chain itself is broken (a seq gap — some sealed
//               segment was lost), replay stops at the last contiguous
//               record and the store opens DEGRADED (read-only): the
//               recovered prefix is every bit of reachable history, but
//               accepting new commits would re-issue seqs that stale
//               segments still carry. `logres_fsck --repair` (or
//               restoring the missing segment and reopening) clears it.
//
//   scrub:      Scrub() re-reads and re-verifies every artifact (all
//               checkpoint generations, all journal segments) through the
//               Io seam without mutating anything — bit rot is found
//               while the store is healthy, not at the next recovery.
//               Results are folded into status() and `journal status`.
//
// Every file operation goes through the Io seam (util/io.h):
// StorageOptions::io injects a FaultyIo for testing; production uses
// PosixIo. On top of the seam sits the graceful-degradation contract:
//
//   * Transient faults (EINTR, short writes) are retried in place with
//     bounded backoff inside WriteAll/ReadAll/SyncRetry — invisible here.
//   * A persistent fault on the journal append/fsync path (kUnavailable)
//     rolls the application back and flips the store into read-only
//     DEGRADED mode: queries keep working against the in-memory state,
//     every later ApplySource/Checkpoint is refused with kUnavailable
//     carrying the root cause, and `journal status` reports DEGRADED.
//   * Reopen() attempts recovery-and-resume: it re-runs full Open()
//     recovery (re-reading the on-disk tail — after an fsync failure the
//     page cache must not be trusted, so re-verification is a fresh scan)
//     and resumes only if the recovered state covers every acknowledged
//     commit; otherwise the store stays degraded with the durability gap
//     reported. The journal itself enforces the same rule locally via
//     Journal::tail_suspect().
//
// Deliberately NOT durable: the EvalOptions/Budget a commit ran under
// (replay uses an unlimited budget — a commit that terminated once
// terminates again), and oids consumed by *rejected* applications after
// the last commit (the state triple is unaffected; gen_before
// fast-forwarding re-creates the gaps that precede each commit). Modules
// registered at Create time ARE durable: dumps carry `module` blocks
// (dump format v2), so ApplyByName keeps working after recovery.
//
// Failpoint sites, in write order: journal.append, journal.fsync,
// checkpoint.write, checkpoint.rename, checkpoint.truncate,
// checkpoint.prune (plus fsck.repair in storage/fsck.cc). The
// crash-injection matrix (tests/storage_crash_test.cc) kills the process
// at each and asserts the reopened store equals exactly the pre- or
// post-application dump, never a hybrid.

#ifndef LOGRES_STORAGE_JOURNALED_DATABASE_H_
#define LOGRES_STORAGE_JOURNALED_DATABASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/dump.h"
#include "storage/fsck.h"
#include "storage/journal.h"
#include "util/io.h"
#include "util/status.h"

namespace logres {

struct StorageOptions {
  /// Auto-checkpoint after this many committed applications since the
  /// last checkpoint (0 = only explicit Checkpoint() calls).
  uint64_t checkpoint_interval = 64;
  /// Rotated journals to keep (journal.<seq>.old); 0 = no rotation, the
  /// journal is emptied in place after a checkpoint (the pre-rotation
  /// behaviour). Checkpoint generations (CHECKPOINT.<seq>.old) use the
  /// same keep-count: a retained checkpoint is only useful while the
  /// rotated journals that bridge it back to HEAD survive, so the two
  /// are retained and pruned in lockstep (DESIGN.md §12).
  uint64_t rotated_journals_keep = 3;
  /// File operations go through this (PosixIo when null). The pointer is
  /// borrowed; it must outlive the store. Tests inject a FaultyIo here.
  Io* io = nullptr;
};

/// \brief One checkpoint generation as `journal status` reports it
/// (HEAD plus each retained CHECKPOINT.<seq>.old, newest first).
struct CheckpointGenerationInfo {
  uint64_t seq = 0;
  bool head = false;  ///< the live CHECKPOINT (as opposed to a .old)
  uint64_t bytes = 0;
  int version = 0;       ///< checkpoint format version (0 = unreadable)
  bool verified = false;  ///< v2 CRC footer present and matching
  bool usable = false;    ///< recovery could load this generation
  /// True when the rotated-journal chain needed to replay this
  /// generation forward to HEAD is complete on disk (by name; always
  /// true for HEAD itself, whose chain is the live journal).
  bool chain_covered = false;
  std::string detail;  ///< why unusable, when it is
};

/// \brief Observable state of the store (`journal status` in the shell).
struct StorageStatus {
  uint64_t last_seq = 0;        // seq of the newest committed application
  uint64_t checkpoint_seq = 0;  // seq the CHECKPOINT file covers
  uint64_t journal_records = 0;  // live records in the journal file
  uint64_t journal_bytes = 0;
  uint64_t replayed_at_open = 0;
  uint64_t truncated_bytes_at_open = 0;
  /// Rotated journal files currently kept on disk.
  uint64_t rotated_journals = 0;
  /// Retained checkpoint generations (CHECKPOINT.<seq>.old) on disk.
  uint64_t checkpoint_generations = 0;
  /// Which generation Open() actually recovered from: the seq it covered
  /// and how many newer generations had to be skipped (0 = the live
  /// CHECKPOINT; 1 = the newest .old; ...).
  uint64_t recovered_checkpoint_seq = 0;
  uint64_t recovered_fallback_depth = 0;
  /// Cumulative evaluator steps and last result-instance fact count over
  /// the commits this process made (from ModuleResult::stats).
  uint64_t steps_total = 0;
  uint64_t facts_last = 0;
  /// Read-only degraded mode: writes are refused (kUnavailable, carrying
  /// degraded_reason), reads keep working. Reopen() to recover.
  bool degraded = false;
  std::string degraded_reason;
  /// Online scrub results (false/empty until Scrub() has run).
  bool scrubbed = false;
  bool last_scrub_ok = false;
  std::string last_scrub_summary;
  std::string last_scrub_time;
  /// Recovery/auto-checkpoint warnings (torn records, skipped stale
  /// records, fallback recoveries, failed background checkpoints,
  /// degradation events).
  std::vector<std::string> warnings;
};

/// \brief What one Scrub() pass found.
struct ScrubReport {
  std::vector<StoreFileCheck> files;
  uint64_t errors = 0;  ///< error-level findings (0 = clean)
  uint64_t notes = 0;   ///< non-error observations (torn tails, debris)
  std::string summary;  ///< one line, as `journal status` shows it
  bool ok() const { return errors == 0; }
};

/// \brief A Database whose committed module applications survive process
/// death. Move-only (owns the journal file descriptor).
class JournaledDatabase {
 public:
  /// \brief Initializes a new store at \p dir (created if missing) from
  /// an in-memory database: writes the initial checkpoint (seq 0) and an
  /// empty journal. Fails if \p dir already holds a store.
  static Result<JournaledDatabase> Create(const std::string& dir,
                                          Database db,
                                          StorageOptions options = {});

  /// \brief Convenience: Create from LOGRES source text.
  static Result<JournaledDatabase> Create(const std::string& dir,
                                          const std::string& source,
                                          StorageOptions options = {});

  /// \brief Opens an existing store, running the recovery escalation
  /// ladder (newest verifying checkpoint generation + chained
  /// rotated-journal replay; see the file comment). Errors only when no
  /// generation at all can be recovered from.
  static Result<JournaledDatabase> Open(const std::string& dir,
                                        StorageOptions options = {});

  JournaledDatabase(JournaledDatabase&&) = default;
  JournaledDatabase& operator=(JournaledDatabase&&) = default;

  /// \brief The wrapped database. Reads (Query/Materialize/...) go
  /// straight through — including while degraded; direct mutation
  /// bypasses the journal and is NOT durable — use ApplySource for
  /// anything that must survive.
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// \brief Applies a module durably: Database::ApplySource, then journal
  /// append + fsync. Only acknowledged (OK) commits are durable. While
  /// degraded, refused up front with kUnavailable (the state is not
  /// touched and no oids are consumed); a persistent I/O fault during the
  /// append rolls the application back AND enters degraded mode.
  Result<ModuleResult> ApplySource(const std::string& source,
                                   ApplicationMode mode,
                                   const EvalOptions& options = {});

  /// \brief Applies a registered module by name (under its default mode),
  /// durably: the journal record carries the module's own serialized
  /// source (ModuleToSource), so replay never depends on the registry.
  Result<ModuleResult> ApplyByName(const std::string& name,
                                   const EvalOptions& options = {});

  /// \brief Writes a checkpoint covering every commit so far (retaining
  /// the previous one as a generation), then rotates the journal aside
  /// (pruning rotated journals and checkpoint generations beyond the
  /// keep-count, in lockstep) or empties it when rotation is disabled.
  Status Checkpoint();

  /// \brief Recovery-and-resume after degradation (also safe when
  /// healthy): re-runs full Open() recovery against the on-disk state —
  /// a fresh scan, never trusting the page cache — and swaps it in if it
  /// covers every commit this store has acknowledged. On success the
  /// store is writable again; on failure it stays degraded and returns
  /// why. Session counters (steps_total) and warnings are preserved.
  Status Reopen();

  /// \brief Online integrity scrub: re-reads and re-verifies every
  /// checkpoint generation and journal segment through the Io seam.
  /// Strictly read-only against the store files (works while degraded);
  /// the outcome lands in status() (last_scrub_*) and, when errors are
  /// found, in warnings. Returns the per-file report.
  ScrubReport Scrub();

  /// \brief The checkpoint generations currently on disk (HEAD first,
  /// then .old files newest-first), each re-verified from disk, with
  /// chain coverage computed from the rotated journals present.
  std::vector<CheckpointGenerationInfo> Generations() const;

  /// \brief True while in read-only degraded mode.
  bool degraded() const { return degraded_; }
  /// \brief The root-cause fault that triggered degradation (OK when
  /// healthy).
  const Status& degraded_reason() const { return degraded_reason_; }

  const std::string& dir() const { return dir_; }
  StorageStatus status() const;

 private:
  JournaledDatabase(std::string dir, Database db, Journal journal,
                    StorageOptions options, Io* io)
      : dir_(std::move(dir)),
        db_(std::move(db)),
        journal_(std::move(journal)),
        options_(options),
        io_(io) {}

  Status WriteCheckpoint();
  // Moves the live journal to journal.<checkpoint_seq_>.old and starts a
  // fresh one; prunes retired artifacts beyond the keep-count.
  Status RotateJournal();
  // Prunes rotated journals and checkpoint generations past the
  // keep-count, oldest first and in lockstep. Site: checkpoint.prune.
  Status PruneRetired();
  // Enters degraded mode if `failure` is a persistent I/O fault
  // (kUnavailable); returns `failure` either way.
  Status NoteFailure(Status failure);

  std::string dir_;
  Database db_;
  Journal journal_;
  StorageOptions options_;
  Io* io_ = nullptr;  // resolved from options_.io; never null
  uint64_t last_seq_ = 0;
  uint64_t checkpoint_seq_ = 0;
  uint64_t replayed_at_open_ = 0;
  uint64_t rotated_journals_ = 0;
  uint64_t checkpoint_generations_ = 0;
  uint64_t recovered_checkpoint_seq_ = 0;
  uint64_t recovered_fallback_depth_ = 0;
  // False when recovery could not use the live CHECKPOINT: an
  // unverifiable HEAD must never be renamed over a good generation, so
  // the next WriteCheckpoint clobbers it instead of retaining it.
  bool head_checkpoint_retainable_ = false;
  uint64_t steps_total_ = 0;
  uint64_t facts_last_ = 0;
  bool degraded_ = false;
  Status degraded_reason_;
  bool scrubbed_ = false;
  bool last_scrub_ok_ = false;
  std::string last_scrub_summary_;
  std::string last_scrub_time_;
  std::vector<std::string> warnings_;
};

}  // namespace logres

#endif  // LOGRES_STORAGE_JOURNALED_DATABASE_H_
