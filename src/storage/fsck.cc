#include "storage/fsck.h"

#include <fcntl.h>

#include <algorithm>
#include <sstream>

#include "core/dump.h"
#include "storage/checkpoint.h"
#include "storage/journal.h"
#include "storage/journaled_database.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace logres {

namespace {

// Checks one checkpoint file (HEAD or a generation): envelope first, then
// a full parse — a checkpoint whose CRC matches but whose dump no longer
// loads is just as unusable.
StoreFileCheck CheckCheckpointFile(Io& io, const std::string& dir,
                                   const std::string& name, bool head) {
  StoreFileCheck check;
  check.name = name;
  check.kind = head ? "checkpoint" : "checkpoint-generation";
  auto text = ReadFileToString(io, StrCat(dir, "/", name));
  if (!text.ok()) {
    check.error = true;
    check.verdict = "corrupt";
    check.detail = text.status().ToString();
    return check;
  }
  check.bytes = text->size();
  auto envelope = VerifyCheckpointText(*text);
  if (!envelope.ok()) {
    check.error = true;
    check.verdict = "corrupt";
    check.detail = envelope.status().ToString();
    return check;
  }
  check.seq = envelope->seq;
  auto loaded = LoadDatabase(*text);
  if (!loaded.ok()) {
    check.error = true;
    check.verdict = "corrupt";
    check.detail =
        StrCat("envelope valid but dump does not load: ",
               loaded.status().ToString());
    return check;
  }
  if (envelope->version == 1) {
    check.verdict = "unverified-v1";
    check.detail = "format v1 carries no CRC; loadable but unverified";
  } else {
    check.verdict = "ok";
  }
  return check;
}

// Checks one journal file. Torn bytes are an expected crash artifact on
// the *live* journal (recovery truncates them) but rot on a sealed
// rotated segment, which was fully fsync'd before its rename.
StoreFileCheck CheckJournalFile(Io& io, const std::string& dir,
                                const std::string& name, bool sealed,
                                uint64_t name_seq) {
  StoreFileCheck check;
  check.name = name;
  check.kind = sealed ? "rotated-journal" : "journal";
  check.seq = name_seq;
  auto scan = ScanJournal(StrCat(dir, "/", name), &io);
  if (!scan.ok()) {
    check.error = true;
    check.verdict = "corrupt";
    check.detail = scan.status().ToString();
    return check;
  }
  check.bytes = scan->valid_bytes + scan->torn_bytes;
  check.records = scan->records.size();
  if (scan->torn_bytes == 0) {
    check.verdict = "ok";
  } else if (sealed || scan->valid_bytes == 0) {
    // A sealed segment with invalid bytes, or a live journal whose very
    // magic is gone, lost data that was once durable.
    check.error = true;
    check.verdict = "corrupt";
    check.detail = scan->warnings.empty()
                       ? StrCat(scan->torn_bytes, " invalid byte(s)")
                       : scan->warnings.front();
  } else {
    check.verdict = "torn-tail";
    check.detail = scan->warnings.empty()
                       ? StrCat(scan->torn_bytes,
                                " torn byte(s) past the last valid record")
                       : scan->warnings.front();
  }
  return check;
}

// What the store directory holds, by name.
struct StoreLayout {
  bool head_exists = false;
  bool tmp_exists = false;
  bool live_journal_exists = false;
  std::vector<uint64_t> generations;  // ascending
  std::vector<uint64_t> rotated;      // ascending
  std::vector<std::string> others;    // sorted
};

Result<StoreLayout> ScanLayout(Io& io, const std::string& dir) {
  std::vector<std::string> names;
  IoResult listed = io.ListDir(dir, &names);
  if (!listed.ok()) {
    return IoErrorStatus(listed, StrCat("list store directory ", dir));
  }
  StoreLayout layout;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (name == "CHECKPOINT") {
      layout.head_exists = true;
    } else if (name == "CHECKPOINT.tmp") {
      layout.tmp_exists = true;
    } else if (name == "journal") {
      layout.live_journal_exists = true;
    } else if (ParseCheckpointGenerationName(name, &seq)) {
      layout.generations.push_back(seq);
    } else if (ParseRotatedJournalName(name, &seq)) {
      layout.rotated.push_back(seq);
    } else {
      layout.others.push_back(name);
    }
  }
  std::sort(layout.generations.begin(), layout.generations.end());
  std::sort(layout.rotated.begin(), layout.rotated.end());
  std::sort(layout.others.begin(), layout.others.end());
  return layout;
}

// Per-file verdicts, in recovery-ladder order.
std::vector<StoreFileCheck> CheckFiles(Io& io, const std::string& dir,
                                       const StoreLayout& layout) {
  std::vector<StoreFileCheck> files;
  if (layout.head_exists) {
    files.push_back(CheckCheckpointFile(io, dir, "CHECKPOINT",
                                        /*head=*/true));
  }
  for (auto it = layout.generations.rbegin();
       it != layout.generations.rend(); ++it) {
    files.push_back(CheckCheckpointFile(
        io, dir, StrCat("CHECKPOINT.", *it, ".old"), /*head=*/false));
  }
  if (layout.live_journal_exists) {
    files.push_back(CheckJournalFile(io, dir, "journal", /*sealed=*/false,
                                     0));
  }
  for (uint64_t seq : layout.rotated) {
    files.push_back(CheckJournalFile(
        io, dir, StrCat("journal.", seq, ".old"), /*sealed=*/true, seq));
  }
  if (layout.tmp_exists) {
    StoreFileCheck check;
    check.name = "CHECKPOINT.tmp";
    check.kind = "checkpoint-tmp";
    check.verdict = "debris";
    check.detail =
        "leftover from a checkpoint interrupted before its rename; "
        "recovery removes it";
    files.push_back(std::move(check));
  }
  for (const std::string& name : layout.others) {
    StoreFileCheck check;
    check.name = name;
    check.kind = "other";
    check.verdict = "ignored";
    files.push_back(std::move(check));
  }
  return files;
}

// The checks plus the cross-file chain analysis — everything FsckStore
// does except repair, so repair can re-run it for the post-repair bill.
Result<FsckReport> AnalyzeStore(Io& io, const std::string& dir) {
  FsckReport report;
  LOGRES_ASSIGN_OR_RETURN(StoreLayout layout, ScanLayout(io, dir));
  const std::vector<uint64_t>& rotated = layout.rotated;
  bool live_journal_exists = layout.live_journal_exists;
  report.files = CheckFiles(io, dir, layout);

  // Usable checkpoint generations, in the order the recovery ladder
  // tries them.
  struct Usable {
    uint64_t seq = 0;
    bool head = false;
  };
  std::vector<Usable> ladder;
  for (const StoreFileCheck& file : report.files) {
    if ((file.kind == "checkpoint" || file.kind == "checkpoint-generation") &&
        !file.error) {
      ladder.push_back({file.seq, file.kind == "checkpoint"});
    }
  }

  // Chain walk: simulate what recovery from the first usable generation
  // reaches, on record seqs alone (the per-file scans above already
  // vetted the bytes). Recovery only escalates past a generation that
  // fails to *load* — a broken chain stops it where the gap is.
  if (ladder.empty()) {
    report.store_findings.push_back(
        "no usable checkpoint generation: the store cannot be recovered");
    report.errors++;
    report.recoverable = false;
  } else {
    report.recoverable = true;
    uint64_t last = ladder.front().seq;
    std::string break_at;
    auto walk = [&](const std::string& label,
                    const std::vector<JournalRecord>& records) {
      for (const JournalRecord& record : records) {
        if (record.seq <= last) continue;  // covered; recovery skips it
        if (record.seq != last + 1) {
          if (break_at.empty()) {
            break_at = StrCat("replay chain broken in ", label,
                              ": expected seq ", last + 1, ", found ",
                              record.seq);
          }
          return;
        }
        last = record.seq;
      }
    };
    for (uint64_t seq : rotated) {
      if (seq <= ladder.front().seq || !break_at.empty()) continue;
      auto scan = ScanJournal(StrCat(dir, "/journal.", seq, ".old"), &io);
      if (scan.ok()) walk(StrCat("journal.", seq, ".old"), scan->records);
    }
    if (live_journal_exists && break_at.empty()) {
      auto scan = ScanJournal(StrCat(dir, "/journal"), &io);
      if (scan.ok()) walk("journal", scan->records);
    }
    report.recovered_seq = last;
    if (!break_at.empty()) {
      report.store_findings.push_back(
          StrCat(break_at, "; recovery stops at seq ", last,
                 " and opens read-only"));
      report.errors++;
    }

    // Fallback-coverage notes: a usable generation whose rotated-journal
    // chain back to the newest generation is incomplete can only recover
    // a stale prefix (kept on disk as evidence, flagged as a note).
    for (const Usable& gen : ladder) {
      if (gen.head) continue;
      bool covered = true;
      for (const Usable& newer : ladder) {
        if (newer.head || newer.seq <= gen.seq) continue;
        if (std::find(rotated.begin(), rotated.end(), newer.seq) ==
            rotated.end()) {
          covered = false;
        }
      }
      if (!ladder.front().head) {
        // no HEAD boundary to bridge to
      } else if (ladder.front().seq > gen.seq &&
                 std::find(rotated.begin(), rotated.end(),
                           ladder.front().seq) == rotated.end()) {
        covered = false;
      }
      if (!covered) {
        report.store_findings.push_back(
            StrCat("generation CHECKPOINT.", gen.seq,
                   ".old has an incomplete rotated-journal chain; falling "
                   "back to it would recover a stale prefix"));
        report.notes++;
      }
    }
  }

  for (const StoreFileCheck& file : report.files) {
    if (file.error) {
      report.errors++;
    } else if (file.verdict != "ok" && file.verdict != "ignored") {
      report.notes++;
    }
  }
  return report;
}

}  // namespace

std::vector<StoreFileCheck> CheckStoreFiles(Io& io, const std::string& dir) {
  auto layout = ScanLayout(io, dir);
  if (!layout.ok()) {
    StoreFileCheck check;
    check.name = dir;
    check.kind = "store";
    check.verdict = "corrupt";
    check.error = true;
    check.detail = layout.status().ToString();
    return {std::move(check)};
  }
  return CheckFiles(io, dir, *layout);
}

std::string FsckReport::ToText() const {
  std::ostringstream out;
  for (const StoreFileCheck& file : files) {
    out << "fsck file name=" << file.name << " kind=" << file.kind
        << " verdict=" << file.verdict << " error=" << (file.error ? 1 : 0)
        << " seq=" << file.seq << " bytes=" << file.bytes
        << " records=" << file.records;
    if (!file.detail.empty()) out << " detail=" << file.detail;
    out << "\n";
  }
  for (const std::string& finding : store_findings) {
    out << "fsck finding " << finding << "\n";
  }
  for (const std::string& repair : repairs) {
    out << "fsck repair " << repair << "\n";
  }
  out << "fsck summary files=" << files.size() << " errors=" << errors
      << " notes=" << notes << " recoverable=" << (recoverable ? 1 : 0)
      << " recovered_seq=" << recovered_seq << "\n";
  return out.str();
}

Result<FsckReport> FsckStore(const std::string& dir,
                             const FsckOptions& options) {
  Io& io = options.io != nullptr ? *options.io : PosixIo();
  LOGRES_ASSIGN_OR_RETURN(FsckReport report, AnalyzeStore(io, dir));
  if (!options.repair || report.errors == 0) return report;
  if (!report.recoverable) {
    // Nothing to repair *from*: no generation loads. Leave the store
    // untouched for manual forensics.
    report.store_findings.push_back(
        "repair skipped: no usable generation to rebuild from");
    return report;
  }

  std::vector<std::string> repairs;

  // 1. Quarantine every corrupt artifact. Renames, never deletes: the
  // bytes stay on disk as evidence, out of recovery's way.
  for (const StoreFileCheck& file : report.files) {
    if (!file.error) continue;
    std::string from = StrCat(dir, "/", file.name);
    std::string to = StrCat(from, ".quarantine");
    IoResult moved = io.Rename(from, to);
    if (!moved.ok()) {
      return IoErrorStatus(moved,
                           StrCat("repair: quarantine ", file.name));
    }
    repairs.push_back(StrCat("quarantined ", file.name, " (", file.verdict,
                             ": ", file.detail, ")"));
  }

  // Crash window probed by the matrix: artifacts quarantined, verified
  // checkpoint not yet rewritten. Recovery (and a re-run of fsck) must
  // still reach the same acked state from what remains.
  LOGRES_FAILPOINT("fsck.repair");

  // 2. Recover whatever the remaining generations + chain reach.
  StorageOptions store_options;
  store_options.io = &io;
  store_options.checkpoint_interval = 0;
  auto recovered = JournaledDatabase::Open(dir, store_options);
  if (!recovered.ok()) {
    return recovered.status().WithContext(
        "repair: recovery after quarantine failed");
  }

  if (!recovered->degraded()) {
    // Chain intact: reseal in place. Checkpoint() rewrites a verified v2
    // HEAD, rotates the journal, and prunes retired artifacts.
    Status sealed = recovered->Checkpoint();
    if (!sealed.ok()) {
      return sealed.WithContext("repair: rewriting the checkpoint failed");
    }
    repairs.push_back(
        StrCat("rewrote a verified checkpoint at seq ",
               recovered->status().checkpoint_seq));
  } else {
    // Chain broken: the recovered prefix is all the reachable history.
    // Rebuild the store around it — quarantine every journal segment
    // (they carry seqs past the break that a resumed store would
    // re-issue) and write a fresh verified checkpoint at the recovered
    // seq.
    uint64_t seq = 0;
    std::string dump;
    std::string reason;
    {
      // Scope closes the store (and its journal fd) before the files are
      // renamed out from under it.
      JournaledDatabase store = std::move(recovered).value();
      seq = store.status().last_seq;
      dump = DumpDatabase(store.db());
      reason = store.degraded_reason().ToString();
    }

    std::vector<std::string> entries;
    IoResult listed = io.ListDir(dir, &entries);
    if (!listed.ok()) {
      return IoErrorStatus(listed, "repair: list store directory");
    }
    for (const std::string& name : entries) {
      uint64_t ignored = 0;
      if (name != "journal" && !ParseRotatedJournalName(name, &ignored)) {
        continue;
      }
      IoResult moved = io.Rename(StrCat(dir, "/", name),
                                 StrCat(dir, "/", name, ".quarantine"));
      if (!moved.ok()) {
        return IoErrorStatus(moved, StrCat("repair: quarantine ", name));
      }
      repairs.push_back(
          StrCat("quarantined ", name, " (past the chain break: ", reason,
                 ")"));
    }
    std::string text = EncodeCheckpoint(seq, dump);
    std::string tmp_path = CheckpointTmpPath(dir);
    IoResult fd = io.Open(tmp_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (!fd.ok()) return IoErrorStatus(fd, StrCat("repair: open ", tmp_path));
    Status wrote = WriteAll(io, static_cast<int>(fd.value), text.data(),
                            text.size(), StrCat("repair: write ", tmp_path));
    if (wrote.ok()) {
      wrote = SyncRetry(io, static_cast<int>(fd.value),
                        StrCat("repair: fsync ", tmp_path),
                        /*data_only=*/false);
    }
    (void)io.Close(static_cast<int>(fd.value));
    if (!wrote.ok()) return wrote;
    IoResult renamed = io.Rename(tmp_path, CheckpointPath(dir));
    if (!renamed.ok()) {
      return IoErrorStatus(renamed, "repair: rename fresh checkpoint");
    }
    // A fresh (empty) live journal completes the layout; Journal::Open
    // fsyncs the file and the directory entry.
    auto fresh = Journal::Open(JournalPath(dir), &io);
    if (!fresh.ok()) {
      return fresh.status().WithContext(
          "repair: creating a fresh journal failed");
    }
    repairs.push_back(StrCat(
        "rebuilt the store at recovered seq ", seq,
        " (fresh verified checkpoint + empty journal)"));
  }

  // 3. The post-repair bill of health is the report.
  LOGRES_ASSIGN_OR_RETURN(FsckReport final_report, AnalyzeStore(io, dir));
  final_report.repairs = std::move(repairs);
  return final_report;
}

}  // namespace logres
