// Checkpoint file format and generation naming.
//
// A checkpoint is the dump half of the durability contract: recovery
// loads the newest one that *verifies* and replays the journal chain
// past it (journaled_database.h). Because the whole store hangs off this
// one file, format v2 makes it self-verifying, and `WriteCheckpoint`
// retains superseded checkpoints as bounded generations so a corrupt
// HEAD is a fallback, not an outage.
//
// Format v2 (written since the escalation-ladder change):
//
//   -- logres checkpoint v2 seq=<N>
//   <DumpDatabase output>
//   -- logres checkpoint-crc32 <8 hex digits> bytes=<B>
//
// The footer is the last line of the file; <B> is the byte count of
// everything before the footer line and the CRC-32 (IEEE, the journal's
// polynomial) is computed over exactly those bytes — header line
// included, so a flipped seq digit is caught too. Both marker lines are
// `--` comments to the LOGRES lexer, so LoadDatabase swallows the whole
// file unchanged.
//
// Format v1 (`-- logres checkpoint seq=<N>`, no footer) still loads, but
// reports unverified: a v1 file carries no integrity evidence, and a
// *truncated v2* file must never pass itself off as a short v1 — the
// version lives in the header precisely so a missing footer is corruption
// evidence, not a format guess.
//
// Generations: the previous checkpoint is retained as
// `CHECKPOINT.<seq>.old` (seq = the commit it covers), pruned in
// lockstep with rotated journals so every retained generation has the
// rotated `journal.<seq>.old` chain that covers the gap back to HEAD
// (see DESIGN.md §12 for the retention math).

#ifndef LOGRES_STORAGE_CHECKPOINT_H_
#define LOGRES_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/io.h"
#include "util/status.h"

namespace logres {

/// \brief What a checkpoint file's envelope says about itself.
struct CheckpointInfo {
  uint64_t seq = 0;
  int version = 2;
  /// True when the file carries a CRC footer and it matched (always
  /// false for v1 — loadable, but unverified).
  bool verified = false;
  /// Total size of the checkpoint text in bytes.
  uint64_t bytes = 0;
};

/// \brief Encodes a format-v2 checkpoint: header + dump + CRC footer.
std::string EncodeCheckpoint(uint64_t seq, const std::string& dump);

/// \brief Parses and verifies a checkpoint file's text. v2 requires an
/// intact footer whose CRC matches; v1 parses its header only. Any
/// mismatch, truncation, or malformed envelope is an error — the caller
/// (the recovery ladder, scrub, fsck) treats it as a corrupt generation.
Result<CheckpointInfo> VerifyCheckpointText(const std::string& text);

/// \brief Paths inside a store directory.
std::string CheckpointPath(const std::string& dir);
std::string CheckpointTmpPath(const std::string& dir);
std::string CheckpointGenerationPath(const std::string& dir, uint64_t seq);

/// \brief Parses the <seq> out of "CHECKPOINT.<seq>.old"; false for any
/// other name.
bool ParseCheckpointGenerationName(const std::string& name, uint64_t* seq);

/// \brief Retained generation seqs in \p dir (the `.old` files only, not
/// HEAD), ascending. I/O failures yield an empty list.
std::vector<uint64_t> ListCheckpointGenerations(Io& io,
                                                const std::string& dir);

}  // namespace logres

#endif  // LOGRES_STORAGE_CHECKPOINT_H_
