#include "storage/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"
#include "util/string_util.h"

namespace logres {

namespace {

constexpr char kHeaderV2Prefix[] = "-- logres checkpoint v2 seq=";
constexpr char kHeaderV1Prefix[] = "-- logres checkpoint seq=";
constexpr char kFooterPrefix[] = "-- logres checkpoint-crc32 ";
constexpr size_t kCrcHexDigits = 8;

// Parses a decimal uint64 at text[i..], advancing i past the digits.
// False when there is no digit or the value overflows.
bool ParseUint(const std::string& text, size_t* i, uint64_t* out) {
  size_t digits = 0;
  uint64_t value = 0;
  while (*i < text.size() && text[*i] >= '0' && text[*i] <= '9') {
    uint64_t digit = static_cast<uint64_t>(text[*i] - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
    ++*i;
    ++digits;
  }
  if (digits == 0) return false;
  *out = value;
  return true;
}

}  // namespace

std::string EncodeCheckpoint(uint64_t seq, const std::string& dump) {
  std::string body = StrCat(kHeaderV2Prefix, seq, "\n", dump);
  if (body.empty() || body.back() != '\n') body += '\n';
  uint32_t crc = Crc32(body);
  char hex[kCrcHexDigits + 1];
  std::snprintf(hex, sizeof(hex), "%08x", crc);
  return StrCat(body, kFooterPrefix, hex, " bytes=", body.size(), "\n");
}

Result<CheckpointInfo> VerifyCheckpointText(const std::string& text) {
  CheckpointInfo info;
  info.bytes = text.size();

  bool v2 = StartsWith(text, kHeaderV2Prefix);
  if (!v2 && !StartsWith(text, kHeaderV1Prefix)) {
    return Status::ParseError("missing checkpoint header");
  }
  size_t i = std::strlen(v2 ? kHeaderV2Prefix : kHeaderV1Prefix);
  if (!ParseUint(text, &i, &info.seq)) {
    return Status::ParseError("checkpoint header: bad or overflowing seq");
  }
  if (i >= text.size() || text[i] != '\n') {
    return Status::ParseError("checkpoint header: malformed");
  }
  if (!v2) {
    info.version = 1;
    info.verified = false;  // loadable, but carries no integrity evidence
    return info;
  }

  // v2: the footer must be the final line and its CRC must match the
  // bytes it claims to cover — a missing or short footer is corruption
  // (a crash or bit rot ate the tail), never a downgrade to v1.
  size_t footer = text.rfind(kFooterPrefix);
  if (footer == std::string::npos ||
      (footer != 0 && text[footer - 1] != '\n')) {
    return Status::ParseError(
        "checkpoint v2: CRC footer missing (truncated file?)");
  }
  size_t p = footer + std::strlen(kFooterPrefix);
  if (text.size() - p < kCrcHexDigits) {
    return Status::ParseError("checkpoint v2: footer truncated");
  }
  uint32_t stated_crc = 0;
  for (size_t k = 0; k < kCrcHexDigits; ++k) {
    char c = text[p + k];
    uint32_t nibble;
    if (c >= '0' && c <= '9') nibble = static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') nibble = static_cast<uint32_t>(c - 'a' + 10);
    else return Status::ParseError("checkpoint v2: footer CRC not hex");
    stated_crc = (stated_crc << 4) | nibble;
  }
  p += kCrcHexDigits;
  const std::string bytes_key = " bytes=";
  if (text.compare(p, bytes_key.size(), bytes_key) != 0) {
    return Status::ParseError("checkpoint v2: footer malformed");
  }
  p += bytes_key.size();
  uint64_t stated_bytes = 0;
  if (!ParseUint(text, &p, &stated_bytes)) {
    return Status::ParseError("checkpoint v2: footer byte count malformed");
  }
  if (p + 1 != text.size() || text[p] != '\n') {
    return Status::ParseError(
        "checkpoint v2: trailing bytes after the CRC footer");
  }
  if (stated_bytes != footer) {
    return Status::ParseError(
        StrCat("checkpoint v2: footer covers ", stated_bytes,
               " byte(s) but sits at offset ", footer));
  }
  uint32_t actual = Crc32(text.data(), footer);
  if (actual != stated_crc) {
    return Status::ParseError(
        StrCat("checkpoint v2: CRC mismatch (file says ", stated_crc,
               ", bytes hash to ", actual, ")"));
  }
  info.version = 2;
  info.verified = true;
  return info;
}

std::string CheckpointPath(const std::string& dir) {
  return StrCat(dir, "/CHECKPOINT");
}

std::string CheckpointTmpPath(const std::string& dir) {
  return StrCat(dir, "/CHECKPOINT.tmp");
}

std::string CheckpointGenerationPath(const std::string& dir, uint64_t seq) {
  return StrCat(dir, "/CHECKPOINT.", seq, ".old");
}

bool ParseCheckpointGenerationName(const std::string& name, uint64_t* seq) {
  if (!StartsWith(name, "CHECKPOINT.") || !EndsWith(name, ".old")) {
    return false;
  }
  size_t begin = std::strlen("CHECKPOINT.");
  size_t end = name.size() - std::strlen(".old");
  if (end <= begin) return false;
  uint64_t value = 0;
  for (size_t i = begin; i < end; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *seq = value;
  return true;
}

std::vector<uint64_t> ListCheckpointGenerations(Io& io,
                                                const std::string& dir) {
  std::vector<std::string> names;
  std::vector<uint64_t> seqs;
  if (!io.ListDir(dir, &names).ok()) return seqs;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseCheckpointGenerationName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

}  // namespace logres
