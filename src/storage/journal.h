// The write-ahead journal: an append-only log of committed module
// applications.
//
// ALGRES/LOGRES is a main-memory system; dumps are how a state survives a
// process, and before this subsystem a crash between manual `save`s lost
// every committed application. The journal closes that gap: each
// *committed* application is appended and fsync'd before the commit is
// acknowledged, so on reopen the state can be reconstructed by replaying
// the journal over the last checkpoint (see journaled_database.h for the
// recovery algorithm).
//
// File format (all integers little-endian):
//
//   "LOGRESJ1"                        -- 8-byte magic, format version 1
//   record*                           -- zero or more records
//
//   record := u32 payload_len | u32 crc32(payload) | payload bytes
//
// The payload is line-oriented text: a header line
//
//   apply seq=<n> mode=<MODE> gen_before=<a> gen_after=<b>
//         steps=<s> facts=<f>          (one line in the file)
//
// followed by the module source verbatim. `seq` is the global commit
// sequence number (monotonic across checkpoints — checkpoints record the
// seq they cover, so replay can skip records a checkpoint already
// contains). `gen_before` is the oid-generator position the application
// started from: rejected applications consume oids without being
// journaled, so replay fast-forwards the generator to `gen_before` before
// re-applying, making invented oids — and therefore the whole state —
// byte-identical to the live run. `steps`/`facts` record the resources
// the commit consumed (ModuleResult::stats), for `journal status` and
// post-mortem analysis.
//
// Torn-write handling: a record is valid only if its full frame is
// present and the CRC matches. Scanning stops at the first invalid
// record; recovery *truncates* the file there (a torn final record is the
// expected result of a crash mid-append, reported as a warning, never an
// error) and every complete prefix record is replayed.
//
// Failpoint sites: `journal.append` (before any bytes are written) and
// `journal.fsync` (after the frame is written, before fdatasync) — the
// crash-injection tests kill the process at each and assert recovery
// lands on exactly the pre- or post-commit state.

#ifndef LOGRES_STORAGE_JOURNAL_H_
#define LOGRES_STORAGE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/modes.h"
#include "util/io.h"
#include "util/status.h"

namespace logres {

/// \brief One committed module application, as journaled.
struct JournalRecord {
  uint64_t seq = 0;
  ApplicationMode mode = ApplicationMode::kRIDI;
  /// Oid-generator position when the application started (replay
  /// fast-forwards to here first; rejected applications in between
  /// consumed the gap).
  uint64_t gen_before = 0;
  /// Oid-generator position after the commit (replay cross-checks this to
  /// detect non-deterministic replay).
  uint64_t gen_after = 0;
  /// Resources the application consumed (ModuleResult::stats).
  uint64_t steps = 0;
  uint64_t facts = 0;
  std::string module_source;
};

/// \brief Result of scanning a journal file.
struct JournalScan {
  std::vector<JournalRecord> records;
  /// Offset of the first byte past the last valid record (recovery
  /// truncates the file here).
  uint64_t valid_bytes = 0;
  /// Bytes discarded past valid_bytes (0 when the file was clean).
  uint64_t torn_bytes = 0;
  /// Human-readable descriptions of anything discarded or suspicious.
  std::vector<std::string> warnings;
};

/// \brief Encodes \p record as a framed journal entry (frame + payload),
/// ready to be appended. Exposed for tests.
std::string EncodeJournalRecord(const JournalRecord& record);

/// \brief Parses one payload (no frame) back into a record.
Result<JournalRecord> DecodeJournalPayload(const std::string& payload);

/// \brief Reads and validates \p path through \p io (PosixIo when null).
/// Missing file yields an empty scan; torn or corrupt suffixes are
/// reported in warnings, not as errors.
Result<JournalScan> ScanJournal(const std::string& path, Io* io = nullptr);

/// \brief The live journal's path inside a store directory.
std::string JournalPath(const std::string& dir);

/// \brief The rotated-journal path for the checkpoint that covers it:
/// `<dir>/journal.<seq>.old` holds exactly the records a checkpoint with
/// that seq folded in (they cover the gap from the previous checkpoint).
std::string RotatedJournalPath(const std::string& dir, uint64_t seq);

/// \brief Parses the <seq> out of "journal.<seq>.old"; false for any
/// other name.
bool ParseRotatedJournalName(const std::string& name, uint64_t* seq);

/// \brief Rotated-journal seqs currently in \p dir, ascending. I/O
/// failures yield an empty list (callers treat the listing as
/// best-effort).
std::vector<uint64_t> ListRotatedJournals(Io& io, const std::string& dir);

/// \brief An open journal file, append side.
///
/// Move-only; owns the file descriptor. Appends are all-or-nothing from
/// the journal's perspective: if anything fails mid-append (including an
/// injected fault), the file is truncated back to its last known good
/// size so a partial frame never lingers in a *live* journal (a crash can
/// still leave one on disk — that is what scan-time truncation is for).
class Journal {
 public:
  /// \brief Opens \p path for appending, creating it (with the format
  /// magic, fsync'd, directory entry fsync'd) when missing. An existing
  /// file is scanned first and truncated past its last valid record; the
  /// scan (with any warnings) is available via recovered(). All file
  /// operations go through \p io (PosixIo when null).
  static Result<Journal> Open(const std::string& path, Io* io = nullptr);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// \brief Appends \p record and makes it durable (write + fdatasync)
  /// before returning OK. Transient faults (EINTR, short writes) are
  /// retried in place with bounded backoff; a persistent fault returns
  /// kUnavailable with the file rolled back to its last good size.
  /// Sites: journal.append, journal.fsync.
  ///
  /// A persistent *fdatasync* failure additionally poisons the journal
  /// (tail_suspect()): per the fsync-failure rule, the kernel may have
  /// dropped the dirty pages and cleared the error, so neither the fd nor
  /// the page cache can be trusted afterwards. Every later Append is
  /// refused with kUnavailable until the file is re-opened and its tail
  /// re-verified by a fresh scan (JournaledDatabase::Reopen).
  Status Append(const JournalRecord& record);

  /// \brief Empties the journal (truncate to the magic header + fsync);
  /// called after a checkpoint has made its records redundant and the
  /// rotation keep-count is zero.
  Status Reset();

  /// \brief True after a persistent fsync failure: the on-disk tail can
  /// no longer be trusted and appends are refused until re-verified.
  bool tail_suspect() const { return tail_suspect_; }

  /// \brief What Open found in the pre-existing file.
  const JournalScan& recovered() const { return scan_; }

  /// \brief Current durable size of the file in bytes.
  uint64_t size_bytes() const { return good_size_; }

  /// \brief Valid records currently in the file (found at Open plus
  /// appended since, minus any Reset).
  uint64_t live_records() const { return live_records_; }

 private:
  Journal() = default;

  Io* io_ = nullptr;  // never null once Open succeeds
  int fd_ = -1;
  uint64_t good_size_ = 0;
  uint64_t live_records_ = 0;
  bool tail_suspect_ = false;
  JournalScan scan_;
};

}  // namespace logres

#endif  // LOGRES_STORAGE_JOURNAL_H_
