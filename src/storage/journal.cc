#include "storage/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace logres {

namespace {

constexpr char kMagic[] = "LOGRESJ1";
constexpr size_t kMagicSize = 8;
constexpr size_t kFrameSize = 8;  // u32 length + u32 crc
// A corrupt length field must not make recovery allocate gigabytes: no
// legitimate record (a module source) approaches this.
constexpr uint32_t kMaxPayloadSize = 64u << 20;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

// fsync the directory containing `path` so a freshly created or renamed
// entry survives a crash of the whole machine, not just the process.
Status SyncParentDir(Io& io, const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  IoResult fd = io.Open(dir, O_RDONLY | O_DIRECTORY, 0);
  if (!fd.ok()) return IoErrorStatus(fd, StrCat("open directory ", dir));
  Status st = SyncRetry(io, static_cast<int>(fd.value),
                        StrCat("fsync directory ", dir),
                        /*data_only=*/false);
  (void)io.Close(static_cast<int>(fd.value));
  return st;
}

// Parses "key=<uint64>" from a whitespace-separated header field.
Result<uint64_t> ParseField(const std::string& field, const char* key) {
  std::string prefix = StrCat(key, "=");
  if (!StartsWith(field, prefix)) {
    return Status::ParseError(
        StrCat("journal record header: expected ", key, "=..., found '",
               field, "'"));
  }
  const std::string digits = field.substr(prefix.size());
  if (digits.empty()) {
    return Status::ParseError(StrCat("journal record header: empty ", key));
  }
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::ParseError(
          StrCat("journal record header: bad number in '", field, "'"));
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::ParseError(
          StrCat("journal record header: overflow in '", field, "'"));
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

std::string EncodeJournalRecord(const JournalRecord& record) {
  std::string payload =
      StrCat("apply seq=", record.seq, " mode=",
             ApplicationModeName(record.mode), " gen_before=",
             record.gen_before, " gen_after=", record.gen_after, " steps=",
             record.steps, " facts=", record.facts, "\n",
             record.module_source);
  std::string framed;
  framed.reserve(kFrameSize + payload.size());
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  PutU32(&framed, Crc32(payload));
  framed += payload;
  return framed;
}

Result<JournalRecord> DecodeJournalPayload(const std::string& payload) {
  size_t newline = payload.find('\n');
  if (newline == std::string::npos) {
    return Status::ParseError("journal record has no header line");
  }
  std::vector<std::string> fields = Split(payload.substr(0, newline), ' ');
  if (fields.size() != 7 || fields[0] != "apply") {
    return Status::ParseError("journal record header malformed");
  }
  JournalRecord record;
  LOGRES_ASSIGN_OR_RETURN(record.seq, ParseField(fields[1], "seq"));
  if (!StartsWith(fields[2], "mode=")) {
    return Status::ParseError("journal record header: expected mode=...");
  }
  auto mode = ParseApplicationMode(fields[2].substr(5));
  if (!mode.has_value()) {
    return Status::ParseError(
        StrCat("journal record header: unknown ", fields[2]));
  }
  record.mode = *mode;
  LOGRES_ASSIGN_OR_RETURN(record.gen_before,
                          ParseField(fields[3], "gen_before"));
  LOGRES_ASSIGN_OR_RETURN(record.gen_after,
                          ParseField(fields[4], "gen_after"));
  LOGRES_ASSIGN_OR_RETURN(record.steps, ParseField(fields[5], "steps"));
  LOGRES_ASSIGN_OR_RETURN(record.facts, ParseField(fields[6], "facts"));
  record.module_source = payload.substr(newline + 1);
  return record;
}

std::string JournalPath(const std::string& dir) {
  return StrCat(dir, "/journal");
}

std::string RotatedJournalPath(const std::string& dir, uint64_t seq) {
  return StrCat(dir, "/journal.", seq, ".old");
}

bool ParseRotatedJournalName(const std::string& name, uint64_t* seq) {
  if (!StartsWith(name, "journal.") || !EndsWith(name, ".old")) {
    return false;
  }
  size_t begin = std::strlen("journal.");
  size_t end = name.size() - std::strlen(".old");
  if (end <= begin) return false;
  uint64_t value = 0;
  for (size_t i = begin; i < end; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *seq = value;
  return true;
}

std::vector<uint64_t> ListRotatedJournals(Io& io, const std::string& dir) {
  std::vector<std::string> names;
  std::vector<uint64_t> seqs;
  if (!io.ListDir(dir, &names).ok()) return seqs;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseRotatedJournalName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

Result<JournalScan> ScanJournal(const std::string& path, Io* io) {
  Io& the_io = io != nullptr ? *io : PosixIo();
  JournalScan scan;
  bool exists = false;
  LOGRES_ASSIGN_OR_RETURN(std::string data,
                          ReadFileIfExists(the_io, path, &exists));
  if (!exists || data.empty()) return scan;  // absent/empty: valid, empty

  if (data.size() < kMagicSize ||
      data.compare(0, kMagicSize, kMagic, kMagicSize) != 0) {
    // The header itself is torn or foreign; nothing is trustworthy.
    scan.torn_bytes = data.size();
    scan.warnings.push_back(
        StrCat("journal ", path, ": bad or truncated magic; discarding ",
               data.size(), " byte(s)"));
    return scan;
  }
  size_t offset = kMagicSize;
  scan.valid_bytes = offset;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  while (offset < data.size()) {
    if (data.size() - offset < kFrameSize) {
      scan.warnings.push_back(
          StrCat("journal ", path, ": torn frame header at offset ", offset,
                 " (", data.size() - offset, " byte(s)); truncating"));
      break;
    }
    uint32_t length = GetU32(bytes + offset);
    uint32_t crc = GetU32(bytes + offset + 4);
    if (length > kMaxPayloadSize) {
      scan.warnings.push_back(
          StrCat("journal ", path, ": implausible record length ", length,
                 " at offset ", offset, "; truncating"));
      break;
    }
    if (data.size() - offset - kFrameSize < length) {
      scan.warnings.push_back(
          StrCat("journal ", path, ": torn record at offset ", offset,
                 " (payload ", length, ", only ",
                 data.size() - offset - kFrameSize,
                 " byte(s) present); truncating"));
      break;
    }
    std::string payload = data.substr(offset + kFrameSize, length);
    if (Crc32(payload) != crc) {
      scan.warnings.push_back(
          StrCat("journal ", path, ": CRC mismatch at offset ", offset,
                 "; truncating"));
      break;
    }
    auto record = DecodeJournalPayload(payload);
    if (!record.ok()) {
      // The frame checks out but the payload does not parse — treat it
      // like corruption rather than replaying a half-understood commit.
      scan.warnings.push_back(
          StrCat("journal ", path, ": undecodable record at offset ", offset,
                 " (", record.status().ToString(), "); truncating"));
      break;
    }
    scan.records.push_back(std::move(record).value());
    offset += kFrameSize + length;
    scan.valid_bytes = offset;
  }
  scan.torn_bytes = data.size() - scan.valid_bytes;
  return scan;
}

Result<Journal> Journal::Open(const std::string& path, Io* io) {
  Io& the_io = io != nullptr ? *io : PosixIo();
  LOGRES_ASSIGN_OR_RETURN(JournalScan scan, ScanJournal(path, &the_io));

  Journal journal;
  journal.io_ = &the_io;
  journal.scan_ = std::move(scan);

  bool fresh = journal.scan_.valid_bytes == 0;
  IoResult fd = the_io.Open(path, O_WRONLY | O_CREAT, 0644);
  if (!fd.ok()) return IoErrorStatus(fd, StrCat("open journal ", path));
  journal.fd_ = static_cast<int>(fd.value);

  if (fresh) {
    // New (or wholly corrupt) journal: start from a clean header.
    IoResult tr = the_io.Ftruncate(journal.fd_, 0);
    if (!tr.ok()) return IoErrorStatus(tr, "truncate journal");
    LOGRES_RETURN_NOT_OK(
        WriteAll(the_io, journal.fd_, kMagic, kMagicSize, "write journal"));
    LOGRES_RETURN_NOT_OK(
        SyncRetry(the_io, journal.fd_, "fsync journal", /*data_only=*/false));
    LOGRES_RETURN_NOT_OK(SyncParentDir(the_io, path));
    journal.good_size_ = kMagicSize;
  } else {
    // Drop any torn suffix so appends land right after the last valid
    // record. This is the "recover by truncation" half of the contract.
    if (journal.scan_.torn_bytes > 0) {
      IoResult tr =
          the_io.Ftruncate(journal.fd_, journal.scan_.valid_bytes);
      if (!tr.ok()) {
        return IoErrorStatus(tr, "truncate torn journal suffix");
      }
      LOGRES_RETURN_NOT_OK(SyncRetry(the_io, journal.fd_, "fsync journal",
                                     /*data_only=*/false));
    }
    journal.good_size_ = journal.scan_.valid_bytes;
    journal.live_records_ = journal.scan_.records.size();
  }
  IoResult seek = the_io.Lseek(journal.fd_,
                               static_cast<int64_t>(journal.good_size_),
                               SEEK_SET);
  if (!seek.ok()) return IoErrorStatus(seek, "seek journal");
  return journal;
}

Journal::Journal(Journal&& other) noexcept
    : io_(other.io_),
      fd_(other.fd_),
      good_size_(other.good_size_),
      live_records_(other.live_records_),
      tail_suspect_(other.tail_suspect_),
      scan_(std::move(other.scan_)) {
  other.fd_ = -1;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) (void)io_->Close(fd_);
    io_ = other.io_;
    fd_ = other.fd_;
    good_size_ = other.good_size_;
    live_records_ = other.live_records_;
    tail_suspect_ = other.tail_suspect_;
    scan_ = std::move(other.scan_);
    other.fd_ = -1;
  }
  return *this;
}

Journal::~Journal() {
  if (fd_ >= 0) (void)io_->Close(fd_);
}

Status Journal::Append(const JournalRecord& record) {
  if (fd_ < 0) return Status::ExecutionError("journal is not open");
  if (tail_suspect_) {
    // The fsync-failure rule: after a failed fdatasync the page cache may
    // hold pages the disk never got (and the kernel may have dropped the
    // error), so nothing written through this fd is trustworthy until the
    // file is re-opened and its tail re-verified from a fresh read.
    return Status::Unavailable(
        "journal tail is unverified after an fsync failure; reopen the "
        "store to re-verify and resume");
  }
  // Anything that fails from here on (injected or real) rolls the file
  // back to good_size_, so the live journal never carries a partial frame.
  auto fail = [&](Status st) {
    (void)io_->Ftruncate(fd_, good_size_);
    (void)io_->Lseek(fd_, static_cast<int64_t>(good_size_), SEEK_SET);
    return st;
  };
  Status armed = failpoints::AnyArmed()
                     ? failpoints::Check("journal.append")
                     : Status::OK();
  if (!armed.ok()) return fail(armed);

  std::string framed = EncodeJournalRecord(record);
  Status write_st =
      WriteAll(*io_, fd_, framed.data(), framed.size(), "write journal");
  if (!write_st.ok()) return fail(write_st);

  // The record is written but not yet durable: a crash at this site may
  // lose it (recovering the pre-commit state) or keep it (post-commit) —
  // both are consistent, and the crash matrix asserts exactly that.
  armed = failpoints::AnyArmed() ? failpoints::Check("journal.fsync")
                                 : Status::OK();
  if (!armed.ok()) return fail(armed);

  Status sync_st = SyncRetry(*io_, fd_, "fdatasync journal");
  if (!sync_st.ok()) {
    tail_suspect_ = true;
    return fail(sync_st.WithContext(
        "journal tail now unverified (fsync-failure rule)"));
  }
  good_size_ += framed.size();
  live_records_++;
  return Status::OK();
}

Status Journal::Reset() {
  if (fd_ < 0) return Status::ExecutionError("journal is not open");
  if (tail_suspect_) {
    return Status::Unavailable(
        "journal tail is unverified after an fsync failure; reopen the "
        "store to re-verify and resume");
  }
  IoResult tr = io_->Ftruncate(fd_, kMagicSize);
  if (!tr.ok()) return IoErrorStatus(tr, "truncate journal");
  IoResult seek = io_->Lseek(fd_, kMagicSize, SEEK_SET);
  if (!seek.ok()) return IoErrorStatus(seek, "seek journal");
  Status sync_st =
      SyncRetry(*io_, fd_, "fsync journal", /*data_only=*/false);
  if (!sync_st.ok()) {
    tail_suspect_ = true;
    return sync_st;
  }
  good_size_ = kMagicSize;
  live_records_ = 0;
  return Status::OK();
}

}  // namespace logres
