#include "storage/journaled_database.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"
#include "util/string_util.h"

namespace logres {

namespace {

constexpr char kCheckpointName[] = "CHECKPOINT";
constexpr char kCheckpointTmpName[] = "CHECKPOINT.tmp";
constexpr char kJournalName[] = "journal";
constexpr char kCheckpointHeaderPrefix[] = "-- logres checkpoint seq=";

Status ErrnoStatus(const std::string& what) {
  return Status::ExecutionError(StrCat(what, ": ", std::strerror(errno)));
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus(StrCat("open directory ", dir));
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus(StrCat("fsync directory ", dir));
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::string> ReadFileOrError(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus(StrCat("open ", path));
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus(StrCat("read ", path));
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

// Writes `text` to `path` (truncating) and fsyncs it. The caller renames.
Status WriteFileSynced(const std::string& path, const std::string& text) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus(StrCat("open ", path));
  size_t written = 0;
  while (written < text.size()) {
    ssize_t n = ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus(StrCat("write ", path));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoStatus(StrCat("fsync ", path));
  }
  if (::close(fd) != 0) return ErrnoStatus(StrCat("close ", path));
  return Status::OK();
}

}  // namespace

Result<JournaledDatabase> JournaledDatabase::Create(const std::string& dir,
                                                    Database db,
                                                    StorageOptions options) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus(StrCat("mkdir ", dir));
  }
  std::string checkpoint_path = StrCat(dir, "/", kCheckpointName);
  if (FileExists(checkpoint_path)) {
    return Status::AlreadyExists(
        StrCat(dir, " already holds a journaled store (use Open)"));
  }
  LOGRES_ASSIGN_OR_RETURN(Journal journal,
                          Journal::Open(StrCat(dir, "/", kJournalName)));
  JournaledDatabase store(dir, std::move(db), std::move(journal), options);
  // The initial checkpoint IS the store's base state: recovery always has
  // something to load, so an empty journal is a complete store.
  LOGRES_RETURN_NOT_OK(store.WriteCheckpoint());
  return store;
}

Result<JournaledDatabase> JournaledDatabase::Create(const std::string& dir,
                                                    const std::string& source,
                                                    StorageOptions options) {
  LOGRES_ASSIGN_OR_RETURN(Database db, Database::Create(source));
  return Create(dir, std::move(db), options);
}

Result<JournaledDatabase> JournaledDatabase::Open(const std::string& dir,
                                                  StorageOptions options) {
  std::string checkpoint_path = StrCat(dir, "/", kCheckpointName);
  if (!FileExists(checkpoint_path)) {
    return Status::NotFound(
        StrCat(dir, " is not a journaled store (no CHECKPOINT)"));
  }

  // 1. Load the checkpoint. Its first line carries the seq it covers;
  //    the rest is a plain DumpDatabase dump (the "--" header line is a
  //    lexer comment, so LoadDatabase can swallow the whole file).
  LOGRES_ASSIGN_OR_RETURN(std::string text,
                          ReadFileOrError(checkpoint_path));
  if (!StartsWith(text, kCheckpointHeaderPrefix)) {
    return Status::ParseError(
        StrCat(checkpoint_path, ": missing checkpoint header"));
  }
  uint64_t checkpoint_seq = 0;
  {
    size_t i = std::strlen(kCheckpointHeaderPrefix);
    size_t digits = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      uint64_t digit = static_cast<uint64_t>(text[i] - '0');
      if (checkpoint_seq > (UINT64_MAX - digit) / 10) {
        return Status::ParseError(
            StrCat(checkpoint_path, ": checkpoint seq overflows"));
      }
      checkpoint_seq = checkpoint_seq * 10 + digit;
      ++i;
      ++digits;
    }
    if (digits == 0 || (i < text.size() && text[i] != '\n')) {
      return Status::ParseError(
          StrCat(checkpoint_path, ": malformed checkpoint header"));
    }
  }
  auto loaded = LoadDatabase(text);
  if (!loaded.ok()) {
    return loaded.status().WithContext(
        StrCat("loading checkpoint ", checkpoint_path));
  }

  // A leftover CHECKPOINT.tmp means a crash hit mid-checkpoint before the
  // rename; the real CHECKPOINT is still the authority. Clear the debris.
  std::string tmp_path = StrCat(dir, "/", kCheckpointTmpName);
  if (FileExists(tmp_path)) (void)::unlink(tmp_path.c_str());

  // 2. Open the journal; this truncates any torn suffix (with warnings).
  LOGRES_ASSIGN_OR_RETURN(Journal journal,
                          Journal::Open(StrCat(dir, "/", kJournalName)));

  JournaledDatabase store(dir, std::move(loaded).value(),
                          std::move(journal), options);
  store.checkpoint_seq_ = checkpoint_seq;
  store.last_seq_ = checkpoint_seq;
  store.warnings_ = store.journal_.recovered().warnings;

  // 3. Deterministic replay of the journal suffix.
  for (const JournalRecord& record : store.journal_.recovered().records) {
    if (record.seq <= checkpoint_seq) {
      // Already folded into the checkpoint (crash between the checkpoint
      // rename and the journal reset). Skip, but note it: the next
      // checkpoint will clear these out.
      store.warnings_.push_back(
          StrCat("journal record seq=", record.seq,
                 " is covered by checkpoint seq=", checkpoint_seq,
                 "; skipped"));
      continue;
    }
    if (record.seq != store.last_seq_ + 1) {
      return Status::Inconsistent(
          StrCat("journal replay: expected seq ", store.last_seq_ + 1,
                 ", found ", record.seq));
    }
    if (store.db_.oids_issued() > record.gen_before) {
      return Status::Inconsistent(
          StrCat("journal replay: record seq=", record.seq,
                 " starts at oid-generator position ", record.gen_before,
                 " but ", store.db_.oids_issued(), " already issued"));
    }
    // Re-create the oid gap left by rejected (unjournaled) applications
    // so invented oids replay byte-identically.
    store.db_.oid_generator()->FastForward(record.gen_before);
    EvalOptions replay_options;
    replay_options.budget = Budget::Unlimited();
    auto replayed =
        store.db_.ApplySource(record.module_source, record.mode,
                              replay_options);
    if (!replayed.ok()) {
      return replayed.status().WithContext(
          StrCat("journal replay of seq=", record.seq, " failed"));
    }
    if (store.db_.oids_issued() != record.gen_after) {
      return Status::Inconsistent(
          StrCat("journal replay: seq=", record.seq, " ended at generator ",
                 store.db_.oids_issued(), ", journal recorded ",
                 record.gen_after, " (non-deterministic replay?)"));
    }
    store.last_seq_ = record.seq;
    store.replayed_at_open_++;
  }
  return store;
}

Result<ModuleResult> JournaledDatabase::ApplySource(
    const std::string& source, ApplicationMode mode,
    const EvalOptions& options) {
  // Apply() is transactional in process; we snapshot anyway so a failed
  // journal append can undo an otherwise-successful application — memory
  // must never acknowledge a commit the disk does not have.
  Database::Snapshot snapshot = db_.TakeSnapshot();
  uint64_t gen_before = db_.oids_issued();
  LOGRES_ASSIGN_OR_RETURN(ModuleResult result,
                          db_.ApplySource(source, mode, options));

  JournalRecord record;
  record.seq = last_seq_ + 1;
  record.mode = mode;
  record.gen_before = gen_before;
  record.gen_after = db_.oids_issued();
  record.steps = result.stats.steps;
  record.facts = result.stats.facts;
  record.module_source = source;

  Status appended = journal_.Append(record);
  if (!appended.ok()) {
    // The oid generator stays where it is, matching the rejected-apply
    // policy: consumed oids are never reused.
    db_.RestoreSnapshot(std::move(snapshot));
    return appended.WithContext(
        "journal append failed; application rolled back");
  }
  last_seq_ = record.seq;
  steps_total_ += result.stats.steps;
  facts_last_ = result.stats.facts;

  if (options_.checkpoint_interval > 0 &&
      last_seq_ - checkpoint_seq_ >= options_.checkpoint_interval) {
    // The commit is already durable; a failed background checkpoint must
    // not fail it. Record the problem and move on — the journal still
    // covers everything.
    Status st = Checkpoint();
    if (!st.ok()) {
      warnings_.push_back(
          StrCat("auto-checkpoint failed: ", st.ToString()));
    }
  }
  return result;
}

Status JournaledDatabase::WriteCheckpoint() {
  LOGRES_FAILPOINT("checkpoint.write");
  std::string text = StrCat(kCheckpointHeaderPrefix, last_seq_, "\n",
                            DumpDatabase(db_));
  std::string tmp_path = StrCat(dir_, "/", kCheckpointTmpName);
  std::string checkpoint_path = StrCat(dir_, "/", kCheckpointName);
  LOGRES_RETURN_NOT_OK(WriteFileSynced(tmp_path, text));
  LOGRES_FAILPOINT("checkpoint.rename");
  if (::rename(tmp_path.c_str(), checkpoint_path.c_str()) != 0) {
    return ErrnoStatus(StrCat("rename ", tmp_path));
  }
  LOGRES_RETURN_NOT_OK(SyncDir(dir_));
  checkpoint_seq_ = last_seq_;
  return Status::OK();
}

Status JournaledDatabase::Checkpoint() {
  LOGRES_RETURN_NOT_OK(WriteCheckpoint());
  // A crash (or injected fault) between the rename above and the reset
  // below leaves stale records in the journal; recovery skips them by
  // seq, so this window is benign.
  LOGRES_FAILPOINT("checkpoint.truncate");
  return journal_.Reset();
}

StorageStatus JournaledDatabase::status() const {
  StorageStatus s;
  s.last_seq = last_seq_;
  s.checkpoint_seq = checkpoint_seq_;
  s.journal_records = journal_.live_records();
  s.journal_bytes = journal_.size_bytes();
  s.replayed_at_open = replayed_at_open_;
  s.truncated_bytes_at_open = journal_.recovered().torn_bytes;
  s.steps_total = steps_total_;
  s.facts_last = facts_last_;
  s.warnings = warnings_;
  return s;
}

}  // namespace logres
