#include "storage/journaled_database.h"

#include <fcntl.h>

#include <algorithm>
#include <cstring>
#include <ctime>
#include <map>

#include "storage/checkpoint.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace logres {

namespace {

Status SyncDir(Io& io, const std::string& dir) {
  IoResult fd = io.Open(dir, O_RDONLY | O_DIRECTORY, 0);
  if (!fd.ok()) return IoErrorStatus(fd, StrCat("open directory ", dir));
  Status st = SyncRetry(io, static_cast<int>(fd.value),
                        StrCat("fsync directory ", dir),
                        /*data_only=*/false);
  (void)io.Close(static_cast<int>(fd.value));
  return st;
}

Result<bool> FileExists(Io& io, const std::string& path) {
  IoResult r = io.Exists(path);
  if (!r.ok()) return IoErrorStatus(r, StrCat("stat ", path));
  return r.value != 0;
}

// Writes `text` to `path` (truncating) and fsyncs it. The caller renames.
Status WriteFileSynced(Io& io, const std::string& path,
                       const std::string& text) {
  IoResult fd = io.Open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (!fd.ok()) return IoErrorStatus(fd, StrCat("open ", path));
  Status st = WriteAll(io, static_cast<int>(fd.value), text.data(),
                       text.size(), StrCat("write ", path));
  if (st.ok()) {
    st = SyncRetry(io, static_cast<int>(fd.value), StrCat("fsync ", path),
                   /*data_only=*/false);
  }
  IoResult closed = io.Close(static_cast<int>(fd.value));
  if (st.ok() && !closed.ok()) {
    st = IoErrorStatus(closed, StrCat("close ", path));
  }
  return st;
}

std::string NowTimestamp() {
  std::time_t now = std::time(nullptr);
  std::tm tm_buf;
  localtime_r(&now, &tm_buf);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_buf);
  return buf;
}

}  // namespace

Result<JournaledDatabase> JournaledDatabase::Create(const std::string& dir,
                                                    Database db,
                                                    StorageOptions options) {
  Io& io = options.io != nullptr ? *options.io : PosixIo();
  IoResult made = io.Mkdir(dir, 0755);
  if (!made.ok() && made.err != EEXIST) {
    return IoErrorStatus(made, StrCat("mkdir ", dir));
  }
  LOGRES_ASSIGN_OR_RETURN(bool exists, FileExists(io, CheckpointPath(dir)));
  if (exists) {
    return Status::AlreadyExists(
        StrCat(dir, " already holds a journaled store (use Open)"));
  }
  LOGRES_ASSIGN_OR_RETURN(Journal journal,
                          Journal::Open(JournalPath(dir), &io));
  JournaledDatabase store(dir, std::move(db), std::move(journal), options,
                          &io);
  // The initial checkpoint IS the store's base state: recovery always has
  // something to load, so an empty journal is a complete store.
  LOGRES_RETURN_NOT_OK(store.WriteCheckpoint());
  return store;
}

Result<JournaledDatabase> JournaledDatabase::Create(const std::string& dir,
                                                    const std::string& source,
                                                    StorageOptions options) {
  LOGRES_ASSIGN_OR_RETURN(Database db, Database::Create(source));
  return Create(dir, std::move(db), options);
}

Result<JournaledDatabase> JournaledDatabase::Open(const std::string& dir,
                                                  StorageOptions options) {
  Io& io = options.io != nullptr ? *options.io : PosixIo();
  std::string checkpoint_path = CheckpointPath(dir);
  LOGRES_ASSIGN_OR_RETURN(bool head_exists, FileExists(io, checkpoint_path));
  std::vector<uint64_t> generations = ListCheckpointGenerations(io, dir);
  if (!head_exists && generations.empty()) {
    return Status::NotFound(
        StrCat(dir, " is not a journaled store (no CHECKPOINT in any "
                    "generation)"));
  }

  std::vector<std::string> warnings;

  // A leftover CHECKPOINT.tmp means a crash hit mid-checkpoint before the
  // rename; the checkpoint generations stay authoritative. Record the
  // debris before clearing it — silent cleanup would hide the crash from
  // the operator.
  std::string tmp_path = CheckpointTmpPath(dir);
  LOGRES_ASSIGN_OR_RETURN(bool tmp_exists, FileExists(io, tmp_path));
  if (tmp_exists) {
    uint64_t tmp_bytes = 0;
    bool readable = false;
    auto tmp_text = ReadFileIfExists(io, tmp_path, &readable);
    if (tmp_text.ok() && readable) tmp_bytes = tmp_text->size();
    warnings.push_back(
        StrCat("removed leftover CHECKPOINT.tmp (", tmp_bytes,
               " byte(s)) from a checkpoint interrupted before its rename"));
    (void)io.Unlink(tmp_path);
  }

  // Open the live journal once up front: this truncates any torn suffix
  // (with warnings) and its scan feeds every ladder attempt below.
  LOGRES_ASSIGN_OR_RETURN(Journal journal,
                          Journal::Open(JournalPath(dir), &io));
  const JournalScan& live = journal.recovered();
  warnings.insert(warnings.end(), live.warnings.begin(),
                  live.warnings.end());

  // The escalation ladder: candidate generations newest first — the live
  // CHECKPOINT, then each CHECKPOINT.<seq>.old descending.
  struct Candidate {
    std::string path;
    std::string label;
    bool head = false;
  };
  std::vector<Candidate> candidates;
  if (head_exists) {
    candidates.push_back({checkpoint_path, "CHECKPOINT", true});
  }
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    candidates.push_back({CheckpointGenerationPath(dir, *it),
                          StrCat("CHECKPOINT.", *it, ".old"), false});
  }

  std::vector<uint64_t> rotated = ListRotatedJournals(io, dir);
  // Rotated-journal scans are cached across attempts: a deeper fallback
  // replays a superset of the same chain.
  std::map<uint64_t, JournalScan> rotated_scans;

  Status first_failure = Status::OK();
  for (size_t attempt = 0; attempt < candidates.size(); ++attempt) {
    const Candidate& cand = candidates[attempt];
    std::vector<std::string> attempt_warnings;
    uint64_t ckpt_seq = 0;
    uint64_t last_seq = 0;
    uint64_t replayed = 0;
    bool chain_broken = false;
    std::string chain_break_reason;

    auto recover = [&]() -> Result<Database> {
      LOGRES_ASSIGN_OR_RETURN(std::string text,
                              ReadFileToString(io, cand.path));
      auto envelope = VerifyCheckpointText(text);
      if (!envelope.ok()) return envelope.status().WithContext(cand.path);
      if (envelope->version == 1) {
        attempt_warnings.push_back(
            StrCat(cand.label,
                   " is a format-v1 checkpoint (no CRC footer); loaded "
                   "unverified — the next checkpoint upgrades it to v2"));
      }
      auto loaded = LoadDatabase(text);
      if (!loaded.ok()) {
        return loaded.status().WithContext(StrCat("loading ", cand.path));
      }
      Database db = std::move(loaded).value();
      ckpt_seq = envelope->seq;
      last_seq = envelope->seq;

      // The replay chain: every rotated journal covering records past
      // this generation, oldest first, then the live journal.
      struct Segment {
        std::string label;
        const std::vector<JournalRecord>* records;
      };
      std::vector<Segment> segments;
      for (uint64_t seq : rotated) {
        if (seq <= ckpt_seq) continue;
        auto found = rotated_scans.find(seq);
        if (found == rotated_scans.end()) {
          auto scan = ScanJournal(RotatedJournalPath(dir, seq), &io);
          if (!scan.ok()) {
            return scan.status().WithContext(
                StrCat("scanning rotated journal journal.", seq, ".old"));
          }
          found = rotated_scans.emplace(seq, std::move(scan).value()).first;
        }
        // Torn bytes in a *sealed* segment are rot, not a crash artifact;
        // surface the scanner's findings but still replay the prefix.
        attempt_warnings.insert(attempt_warnings.end(),
                                found->second.warnings.begin(),
                                found->second.warnings.end());
        segments.push_back(
            {StrCat("journal.", seq, ".old"), &found->second.records});
      }
      segments.push_back({"journal", &live.records});

      EvalOptions replay_options;
      replay_options.budget = Budget::Unlimited();
      for (const Segment& segment : segments) {
        for (const JournalRecord& record : *segment.records) {
          if (record.seq <= last_seq) {
            // Already folded into the state (crash between a checkpoint
            // rename and its journal rotation, or generation overlap).
            // Skip, but note it: the next checkpoint clears these out.
            attempt_warnings.push_back(
                StrCat(segment.label, " record seq=", record.seq,
                       " is covered by checkpoint seq=", ckpt_seq,
                       "; skipped"));
            continue;
          }
          if (record.seq != last_seq + 1) {
            // A seq gap means a sealed segment was lost: the prefix
            // replayed so far is every bit of reachable history. Stop —
            // replaying past the gap would fabricate a hybrid state.
            chain_broken = true;
            chain_break_reason =
                StrCat("replay chain broken in ", segment.label,
                       ": expected seq ", last_seq + 1, ", found ",
                       record.seq, "; recovered through seq ", last_seq);
            break;
          }
          if (db.oids_issued() > record.gen_before) {
            return Status::Inconsistent(
                StrCat("journal replay: record seq=", record.seq,
                       " starts at oid-generator position ",
                       record.gen_before, " but ", db.oids_issued(),
                       " already issued"));
          }
          // Re-create the oid gap left by rejected (unjournaled)
          // applications so invented oids replay byte-identically.
          db.oid_generator()->FastForward(record.gen_before);
          auto applied = db.ApplySource(record.module_source, record.mode,
                                        replay_options);
          if (!applied.ok()) {
            return applied.status().WithContext(
                StrCat("journal replay of seq=", record.seq, " failed"));
          }
          if (db.oids_issued() != record.gen_after) {
            return Status::Inconsistent(
                StrCat("journal replay: seq=", record.seq,
                       " ended at generator ", db.oids_issued(),
                       ", journal recorded ", record.gen_after,
                       " (non-deterministic replay?)"));
          }
          last_seq = record.seq;
          ++replayed;
        }
        if (chain_broken) break;
      }
      return db;
    };

    Result<Database> attempt_result = recover();
    if (!attempt_result.ok()) {
      // This generation is unusable — escalate to the next one. Only the
      // newest failure is worth returning if the whole ladder fails.
      warnings.push_back(StrCat("checkpoint generation ", cand.label,
                                " is unusable: ",
                                attempt_result.status().ToString()));
      if (first_failure.ok()) first_failure = attempt_result.status();
      continue;
    }

    JournaledDatabase store(dir, std::move(attempt_result).value(),
                            std::move(journal), options, &io);
    store.checkpoint_seq_ = ckpt_seq;
    store.last_seq_ = last_seq;
    store.replayed_at_open_ = replayed;
    store.rotated_journals_ = rotated.size();
    store.checkpoint_generations_ = generations.size();
    store.recovered_checkpoint_seq_ = ckpt_seq;
    // Depth counts generations newer than the one that worked: a missing
    // HEAD makes even the first candidate a fallback.
    store.recovered_fallback_depth_ = head_exists ? attempt : attempt + 1;
    store.head_checkpoint_retainable_ = cand.head;
    warnings.insert(warnings.end(), attempt_warnings.begin(),
                    attempt_warnings.end());
    if (!cand.head) {
      warnings.push_back(
          StrCat("recovered from checkpoint generation ", cand.label,
                 " (seq ", ckpt_seq, ", fallback depth ",
                 store.recovered_fallback_depth_,
                 "): newer generation(s) were missing or unverifiable"));
    }
    if (chain_broken) {
      store.degraded_ = true;
      store.degraded_reason_ = Status::Inconsistent(
          StrCat(chain_break_reason,
                 "; store is read-only — run logres_fsck --repair (or "
                 "restore the missing journal segment and reopen)"));
      warnings.push_back(StrCat("entering read-only degraded mode: ",
                                store.degraded_reason_.ToString()));
    }
    store.warnings_ = std::move(warnings);
    return store;
  }

  Status failure = first_failure.ok()
                       ? Status::Inconsistent("no checkpoint generation")
                       : first_failure;
  return failure.WithContext(
      StrCat("recovery failed: no usable checkpoint generation in ", dir));
}

Status JournaledDatabase::NoteFailure(Status failure) {
  if (failure.code() == StatusCode::kUnavailable && !degraded_) {
    degraded_ = true;
    degraded_reason_ = failure;
    warnings_.push_back(
        StrCat("entering read-only degraded mode: ", failure.ToString()));
  }
  return failure;
}

Result<ModuleResult> JournaledDatabase::ApplySource(
    const std::string& source, ApplicationMode mode,
    const EvalOptions& options) {
  if (degraded_) {
    // Refuse up front: the state (and the oid generator) is untouched, so
    // a recovered store continues exactly where the last ack left off.
    return Status::Unavailable(
        StrCat("store is in read-only degraded mode (reopen to recover); "
               "cause: ", degraded_reason_.ToString()));
  }
  // Apply() is transactional in process; we snapshot anyway so a failed
  // journal append can undo an otherwise-successful application — memory
  // must never acknowledge a commit the disk does not have.
  Database::Snapshot snapshot = db_.TakeSnapshot();
  uint64_t gen_before = db_.oids_issued();
  LOGRES_ASSIGN_OR_RETURN(ModuleResult result,
                          db_.ApplySource(source, mode, options));

  JournalRecord record;
  record.seq = last_seq_ + 1;
  record.mode = mode;
  record.gen_before = gen_before;
  record.gen_after = db_.oids_issued();
  record.steps = result.stats.steps;
  record.facts = result.stats.facts;
  record.module_source = source;

  Status appended = journal_.Append(record);
  if (!appended.ok()) {
    // The oid generator stays where it is, matching the rejected-apply
    // policy: consumed oids are never reused. A persistent I/O fault
    // (kUnavailable) additionally degrades the store; an injected
    // failpoint (ExecutionError) does not — the disk is fine.
    db_.RestoreSnapshot(std::move(snapshot));
    return NoteFailure(appended.WithContext(
        "journal append failed; application rolled back"));
  }
  last_seq_ = record.seq;
  steps_total_ += result.stats.steps;
  facts_last_ = result.stats.facts;

  if (options_.checkpoint_interval > 0 &&
      last_seq_ - checkpoint_seq_ >= options_.checkpoint_interval) {
    // The commit is already durable; a failed background checkpoint must
    // not fail it. Record the problem and move on — the journal still
    // covers everything.
    Status st = Checkpoint();
    if (!st.ok()) {
      warnings_.push_back(
          StrCat("auto-checkpoint failed: ", st.ToString()));
    }
  }
  return result;
}

Result<ModuleResult> JournaledDatabase::ApplyByName(
    const std::string& name, const EvalOptions& options) {
  const Module* found = nullptr;
  for (const Module& module : db_.registered_modules()) {
    if (module.name == name) {
      found = &module;
      break;
    }
  }
  if (found == nullptr) {
    return Status::NotFound(StrCat("no registered module named '", name,
                                   "'"));
  }
  // Journal the module's own serialized source so the record is
  // self-contained: replay re-parses it and never consults the registry.
  std::string source = ModuleToSource(*found);
  ApplicationMode mode =
      found->default_mode.value_or(ApplicationMode::kRIDI);
  return ApplySource(source, mode, options);
}

Status JournaledDatabase::WriteCheckpoint() {
  LOGRES_FAILPOINT("checkpoint.write");
  std::string text = EncodeCheckpoint(last_seq_, DumpDatabase(db_));
  std::string tmp_path = CheckpointTmpPath(dir_);
  std::string checkpoint_path = CheckpointPath(dir_);
  LOGRES_RETURN_NOT_OK(WriteFileSynced(*io_, tmp_path, text));
  // Retain the outgoing checkpoint as a generation before the rename
  // below clobbers it. Only rotation-enabled stores retain (without
  // rotated journals an old generation could never be replayed forward
  // to HEAD), and never a HEAD that recovery could not use — a corrupt
  // CHECKPOINT must not be renamed over anything; overwriting it is the
  // repair.
  if (options_.rotated_journals_keep > 0) {
    IoResult head = io_->Exists(checkpoint_path);
    if (head.ok() && head.value != 0) {
      if (head_checkpoint_retainable_) {
        std::string generation_path =
            CheckpointGenerationPath(dir_, checkpoint_seq_);
        IoResult retained = io_->Rename(checkpoint_path, generation_path);
        if (retained.ok()) {
          checkpoint_generations_++;
        } else {
          // Best-effort: a failed retention costs a fallback rung, not
          // the checkpoint.
          warnings_.push_back(
              StrCat("could not retain the previous checkpoint as ",
                     generation_path, ": ", std::strerror(retained.err)));
        }
      } else {
        warnings_.push_back(
            "replacing an unverifiable CHECKPOINT without retaining it as "
            "a generation");
      }
    }
  }
  // A crash between the retention rename above and the rename below
  // leaves no CHECKPOINT at all; recovery falls back to the just-retained
  // generation and replays the journal chain — the window is covered.
  LOGRES_FAILPOINT("checkpoint.rename");
  IoResult renamed = io_->Rename(tmp_path, checkpoint_path);
  if (!renamed.ok()) {
    return IoErrorStatus(renamed, StrCat("rename ", tmp_path));
  }
  LOGRES_RETURN_NOT_OK(SyncDir(*io_, dir_));
  checkpoint_seq_ = last_seq_;
  head_checkpoint_retainable_ = true;
  return Status::OK();
}

Status JournaledDatabase::RotateJournal() {
  std::string path = JournalPath(dir_);
  std::string rotated = RotatedJournalPath(dir_, checkpoint_seq_);
  IoResult renamed = io_->Rename(path, rotated);
  if (!renamed.ok()) {
    // Nothing moved: the live journal is untouched and still appendable
    // (its records are merely redundant with the checkpoint).
    return IoErrorStatus(renamed, StrCat("rotate journal to ", rotated));
  }
  // A crash here is benign: Open() creates a fresh journal when the file
  // is missing, and every record in the rotated file is covered by the
  // checkpoint. Journal::Open fsyncs the new file and the directory,
  // making the rename and the creation durable together.
  auto fresh = Journal::Open(path, io_);
  if (!fresh.ok()) {
    // Put the live journal back under its canonical name so appends
    // through the still-open fd stay reachable by recovery.
    IoResult back = io_->Rename(rotated, path);
    if (!back.ok()) {
      // The open fd now writes to a file recovery will never read; no
      // append can be allowed until a Reopen re-establishes the layout.
      return NoteFailure(Status::Unavailable(
          StrCat("journal rotation failed (", fresh.status().ToString(),
                 ") and the live journal could not be moved back (",
                 std::strerror(back.err),
                 "); reopen the store to recover")));
    }
    return fresh.status().WithContext("journal rotation aborted");
  }
  journal_ = std::move(fresh).value();
  rotated_journals_++;
  return PruneRetired();
}

Status JournaledDatabase::PruneRetired() {
  // A crash (or injected fault) past this point leaves extra retired
  // files behind; they are simply pruned again after the next
  // checkpoint, so the window is benign.
  LOGRES_FAILPOINT("checkpoint.prune");
  std::vector<uint64_t> journal_seqs = ListRotatedJournals(*io_, dir_);
  rotated_journals_ = journal_seqs.size();
  if (journal_seqs.size() > options_.rotated_journals_keep) {
    size_t drop = journal_seqs.size() - options_.rotated_journals_keep;
    for (size_t i = 0; i < drop; ++i) {
      std::string victim = RotatedJournalPath(dir_, journal_seqs[i]);
      IoResult gone = io_->Unlink(victim);
      if (gone.ok()) {
        rotated_journals_--;
      } else {
        warnings_.push_back(StrCat("pruning rotated journal ", victim,
                                   " failed: ", std::strerror(gone.err)));
      }
    }
  }
  // Checkpoint generations are pruned in lockstep: a generation older
  // than the oldest surviving rotated journal has no chain back to HEAD
  // and would only ever recover a stale prefix.
  std::vector<uint64_t> generation_seqs =
      ListCheckpointGenerations(*io_, dir_);
  checkpoint_generations_ = generation_seqs.size();
  if (generation_seqs.size() > options_.rotated_journals_keep) {
    size_t drop = generation_seqs.size() - options_.rotated_journals_keep;
    for (size_t i = 0; i < drop; ++i) {
      std::string victim = CheckpointGenerationPath(dir_, generation_seqs[i]);
      IoResult gone = io_->Unlink(victim);
      if (gone.ok()) {
        checkpoint_generations_--;
      } else {
        warnings_.push_back(StrCat("pruning checkpoint generation ", victim,
                                   " failed: ", std::strerror(gone.err)));
      }
    }
  }
  return Status::OK();
}

Status JournaledDatabase::Checkpoint() {
  if (degraded_) {
    return Status::Unavailable(
        StrCat("store is in read-only degraded mode (reopen to recover); "
               "cause: ", degraded_reason_.ToString()));
  }
  LOGRES_RETURN_NOT_OK(WriteCheckpoint());
  // A crash (or injected fault) between the rename above and the
  // rotation/reset below leaves stale records in the journal; recovery
  // skips them by seq, so this window is benign.
  LOGRES_FAILPOINT("checkpoint.truncate");
  Status st = options_.rotated_journals_keep == 0 ? journal_.Reset()
                                                  : RotateJournal();
  if (!st.ok() && journal_.tail_suspect()) {
    // The journal refuses appends until re-verified; surface that as
    // degradation now rather than on the next apply.
    return NoteFailure(
        st.code() == StatusCode::kUnavailable
            ? st
            : Status::Unavailable(st.ToString()));
  }
  return st;
}

Status JournaledDatabase::Reopen() {
  uint64_t acked_seq = last_seq_;
  uint64_t steps_total = steps_total_;
  uint64_t facts_last = facts_last_;
  std::vector<std::string> warnings = warnings_;

  auto reopened = Open(dir_, options_);
  if (!reopened.ok()) {
    Status st = reopened.status().WithContext(
        degraded_ ? "reopen failed; store remains degraded"
                  : "reopen failed");
    warnings_.push_back(st.ToString());
    return st;
  }
  if (reopened->last_seq_ < acked_seq) {
    // The disk lost acknowledged commits (the fsync-failure scenario this
    // exists to catch). Resuming would silently fork history; stay
    // read-only and report the gap.
    degraded_ = true;
    degraded_reason_ = Status::Inconsistent(
        StrCat("reopen recovered seq ", reopened->last_seq_,
               " but seq ", acked_seq,
               " was acknowledged; durability gap — store remains "
               "read-only"));
    warnings_.push_back(degraded_reason_.ToString());
    return degraded_reason_;
  }

  bool still_degraded = reopened->degraded_;
  Status degraded_reason = reopened->degraded_reason_;
  uint64_t fallback_depth = reopened->recovered_fallback_depth_;
  uint64_t recovered_from = reopened->recovered_checkpoint_seq_;
  *this = std::move(reopened).value();
  steps_total_ = steps_total;
  facts_last_ = facts_last;
  if (fallback_depth > 0) {
    warnings.push_back(
        StrCat("reopen: recovered from checkpoint generation seq ",
               recovered_from, " (fallback depth ", fallback_depth, ")"));
  }
  if (still_degraded) {
    warnings.push_back(
        StrCat("reopen: recovery reached seq ", last_seq_,
               " but the store reopened degraded: ",
               degraded_reason.ToString()));
    warnings.insert(warnings.end(), warnings_.begin(), warnings_.end());
    warnings_ = std::move(warnings);
    return degraded_reason;
  }
  warnings.push_back(
      StrCat("reopen: recovery re-verified the journal through seq ",
             last_seq_, "; store resumed"));
  warnings.insert(warnings.end(), warnings_.begin(), warnings_.end());
  warnings_ = std::move(warnings);
  return Status::OK();
}

ScrubReport JournaledDatabase::Scrub() {
  ScrubReport report;
  report.files = CheckStoreFiles(*io_, dir_);
  for (const StoreFileCheck& file : report.files) {
    if (file.error) {
      report.errors++;
    } else if (file.verdict != "ok") {
      report.notes++;
    }
  }
  report.summary = StrCat(report.files.size(), " file(s) checked, ",
                          report.errors, " error(s), ", report.notes,
                          " note(s)");
  scrubbed_ = true;
  last_scrub_ok_ = report.ok();
  last_scrub_summary_ = report.summary;
  last_scrub_time_ = NowTimestamp();
  if (!report.ok()) {
    warnings_.push_back(StrCat("scrub found ", report.errors,
                               " error(s) (", report.summary,
                               "); run logres_fsck for detail and repair"));
  }
  return report;
}

std::vector<CheckpointGenerationInfo> JournaledDatabase::Generations() const {
  std::vector<CheckpointGenerationInfo> out;
  std::vector<uint64_t> generation_seqs =
      ListCheckpointGenerations(*io_, dir_);
  std::vector<uint64_t> rotated = ListRotatedJournals(*io_, dir_);
  auto has_rotated = [&](uint64_t seq) {
    return std::find(rotated.begin(), rotated.end(), seq) != rotated.end();
  };

  auto check_one = [&](const std::string& path, uint64_t name_seq,
                       bool head) {
    CheckpointGenerationInfo info;
    info.head = head;
    info.seq = name_seq;
    auto text = ReadFileToString(*io_, path);
    if (!text.ok()) {
      info.detail = text.status().ToString();
      return info;
    }
    info.bytes = text->size();
    auto envelope = VerifyCheckpointText(*text);
    if (!envelope.ok()) {
      info.detail = envelope.status().ToString();
      return info;
    }
    info.seq = envelope->seq;
    info.version = envelope->version;
    info.verified = envelope->verified;
    info.usable = true;
    if (envelope->version == 1) info.detail = "v1: loadable but unverified";
    return info;
  };

  bool head_present = false;
  IoResult head = io_->Exists(CheckpointPath(dir_));
  if (head.ok() && head.value != 0) {
    head_present = true;
    CheckpointGenerationInfo info =
        check_one(CheckpointPath(dir_), checkpoint_seq_, true);
    // HEAD's replay chain is the live journal itself, always present.
    info.chain_covered = true;
    out.push_back(std::move(info));
  }
  for (auto it = generation_seqs.rbegin(); it != generation_seqs.rend();
       ++it) {
    CheckpointGenerationInfo info =
        check_one(CheckpointGenerationPath(dir_, *it), *it, false);
    // A generation's replay chain needs a rotated journal for every
    // checkpoint boundary between it and HEAD: every newer generation on
    // disk, plus HEAD's own seq (computed by name — the cheap check
    // `journal status` can afford; scrub/fsck walk the actual records).
    bool covered = true;
    for (uint64_t newer : generation_seqs) {
      if (newer > *it && !has_rotated(newer)) covered = false;
    }
    if (head_present && checkpoint_seq_ > *it &&
        !has_rotated(checkpoint_seq_)) {
      covered = false;
    }
    info.chain_covered = covered;
    out.push_back(std::move(info));
  }
  return out;
}

StorageStatus JournaledDatabase::status() const {
  StorageStatus s;
  s.last_seq = last_seq_;
  s.checkpoint_seq = checkpoint_seq_;
  s.journal_records = journal_.live_records();
  s.journal_bytes = journal_.size_bytes();
  s.replayed_at_open = replayed_at_open_;
  s.truncated_bytes_at_open = journal_.recovered().torn_bytes;
  s.rotated_journals = rotated_journals_;
  s.checkpoint_generations = checkpoint_generations_;
  s.recovered_checkpoint_seq = recovered_checkpoint_seq_;
  s.recovered_fallback_depth = recovered_fallback_depth_;
  s.steps_total = steps_total_;
  s.facts_last = facts_last_;
  s.degraded = degraded_;
  if (degraded_) s.degraded_reason = degraded_reason_.ToString();
  s.scrubbed = scrubbed_;
  s.last_scrub_ok = last_scrub_ok_;
  s.last_scrub_summary = last_scrub_summary_;
  s.last_scrub_time = last_scrub_time_;
  s.warnings = warnings_;
  return s;
}

}  // namespace logres
