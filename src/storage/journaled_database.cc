#include "storage/journaled_database.h"

#include <fcntl.h>

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"
#include "util/string_util.h"

namespace logres {

namespace {

constexpr char kCheckpointName[] = "CHECKPOINT";
constexpr char kCheckpointTmpName[] = "CHECKPOINT.tmp";
constexpr char kJournalName[] = "journal";
constexpr char kRotatedSuffix[] = ".old";
constexpr char kCheckpointHeaderPrefix[] = "-- logres checkpoint seq=";

Status SyncDir(Io& io, const std::string& dir) {
  IoResult fd = io.Open(dir, O_RDONLY | O_DIRECTORY, 0);
  if (!fd.ok()) return IoErrorStatus(fd, StrCat("open directory ", dir));
  Status st = SyncRetry(io, static_cast<int>(fd.value),
                        StrCat("fsync directory ", dir),
                        /*data_only=*/false);
  (void)io.Close(static_cast<int>(fd.value));
  return st;
}

Result<bool> FileExists(Io& io, const std::string& path) {
  IoResult r = io.Exists(path);
  if (!r.ok()) return IoErrorStatus(r, StrCat("stat ", path));
  return r.value != 0;
}

Result<std::string> ReadFileOrError(Io& io, const std::string& path) {
  IoResult fd = io.Open(path, O_RDONLY, 0);
  if (!fd.ok()) return IoErrorStatus(fd, StrCat("open ", path));
  auto data = ReadAll(io, static_cast<int>(fd.value), StrCat("read ", path));
  (void)io.Close(static_cast<int>(fd.value));
  return data;
}

// Writes `text` to `path` (truncating) and fsyncs it. The caller renames.
Status WriteFileSynced(Io& io, const std::string& path,
                       const std::string& text) {
  IoResult fd = io.Open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (!fd.ok()) return IoErrorStatus(fd, StrCat("open ", path));
  Status st = WriteAll(io, static_cast<int>(fd.value), text.data(),
                       text.size(), StrCat("write ", path));
  if (st.ok()) {
    st = SyncRetry(io, static_cast<int>(fd.value), StrCat("fsync ", path),
                   /*data_only=*/false);
  }
  IoResult closed = io.Close(static_cast<int>(fd.value));
  if (st.ok() && !closed.ok()) {
    st = IoErrorStatus(closed, StrCat("close ", path));
  }
  return st;
}

// Parses the <seq> out of "journal.<seq>.old"; false for anything else.
bool ParseRotatedName(const std::string& name, uint64_t* seq) {
  std::string prefix = StrCat(kJournalName, ".");
  if (!StartsWith(name, prefix) || !EndsWith(name, kRotatedSuffix)) {
    return false;
  }
  size_t begin = prefix.size();
  size_t end = name.size() - std::strlen(kRotatedSuffix);
  if (end <= begin) return false;
  uint64_t value = 0;
  for (size_t i = begin; i < end; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *seq = value;
  return true;
}

// Rotated journal seqs currently on disk, oldest first. I/O failures
// yield an empty list (pruning is best-effort).
std::vector<uint64_t> ListRotatedJournals(Io& io, const std::string& dir) {
  std::vector<std::string> names;
  std::vector<uint64_t> seqs;
  if (!io.ListDir(dir, &names).ok()) return seqs;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseRotatedName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

}  // namespace

Result<JournaledDatabase> JournaledDatabase::Create(const std::string& dir,
                                                    Database db,
                                                    StorageOptions options) {
  Io& io = options.io != nullptr ? *options.io : PosixIo();
  IoResult made = io.Mkdir(dir, 0755);
  if (!made.ok() && made.err != EEXIST) {
    return IoErrorStatus(made, StrCat("mkdir ", dir));
  }
  std::string checkpoint_path = StrCat(dir, "/", kCheckpointName);
  LOGRES_ASSIGN_OR_RETURN(bool exists, FileExists(io, checkpoint_path));
  if (exists) {
    return Status::AlreadyExists(
        StrCat(dir, " already holds a journaled store (use Open)"));
  }
  LOGRES_ASSIGN_OR_RETURN(Journal journal,
                          Journal::Open(StrCat(dir, "/", kJournalName), &io));
  JournaledDatabase store(dir, std::move(db), std::move(journal), options,
                          &io);
  // The initial checkpoint IS the store's base state: recovery always has
  // something to load, so an empty journal is a complete store.
  LOGRES_RETURN_NOT_OK(store.WriteCheckpoint());
  return store;
}

Result<JournaledDatabase> JournaledDatabase::Create(const std::string& dir,
                                                    const std::string& source,
                                                    StorageOptions options) {
  LOGRES_ASSIGN_OR_RETURN(Database db, Database::Create(source));
  return Create(dir, std::move(db), options);
}

Result<JournaledDatabase> JournaledDatabase::Open(const std::string& dir,
                                                  StorageOptions options) {
  Io& io = options.io != nullptr ? *options.io : PosixIo();
  std::string checkpoint_path = StrCat(dir, "/", kCheckpointName);
  LOGRES_ASSIGN_OR_RETURN(bool exists, FileExists(io, checkpoint_path));
  if (!exists) {
    return Status::NotFound(
        StrCat(dir, " is not a journaled store (no CHECKPOINT)"));
  }

  // 1. Load the checkpoint. Its first line carries the seq it covers;
  //    the rest is a plain DumpDatabase dump (the "--" header line is a
  //    lexer comment, so LoadDatabase can swallow the whole file).
  LOGRES_ASSIGN_OR_RETURN(std::string text,
                          ReadFileOrError(io, checkpoint_path));
  if (!StartsWith(text, kCheckpointHeaderPrefix)) {
    return Status::ParseError(
        StrCat(checkpoint_path, ": missing checkpoint header"));
  }
  uint64_t checkpoint_seq = 0;
  {
    size_t i = std::strlen(kCheckpointHeaderPrefix);
    size_t digits = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      uint64_t digit = static_cast<uint64_t>(text[i] - '0');
      if (checkpoint_seq > (UINT64_MAX - digit) / 10) {
        return Status::ParseError(
            StrCat(checkpoint_path, ": checkpoint seq overflows"));
      }
      checkpoint_seq = checkpoint_seq * 10 + digit;
      ++i;
      ++digits;
    }
    if (digits == 0 || (i < text.size() && text[i] != '\n')) {
      return Status::ParseError(
          StrCat(checkpoint_path, ": malformed checkpoint header"));
    }
  }
  auto loaded = LoadDatabase(text);
  if (!loaded.ok()) {
    return loaded.status().WithContext(
        StrCat("loading checkpoint ", checkpoint_path));
  }

  // A leftover CHECKPOINT.tmp means a crash hit mid-checkpoint before the
  // rename; the real CHECKPOINT is still the authority. Clear the debris.
  std::string tmp_path = StrCat(dir, "/", kCheckpointTmpName);
  LOGRES_ASSIGN_OR_RETURN(bool tmp_exists, FileExists(io, tmp_path));
  if (tmp_exists) (void)io.Unlink(tmp_path);

  // 2. Open the journal; this truncates any torn suffix (with warnings).
  LOGRES_ASSIGN_OR_RETURN(Journal journal,
                          Journal::Open(StrCat(dir, "/", kJournalName), &io));

  JournaledDatabase store(dir, std::move(loaded).value(),
                          std::move(journal), options, &io);
  store.checkpoint_seq_ = checkpoint_seq;
  store.last_seq_ = checkpoint_seq;
  store.rotated_journals_ = ListRotatedJournals(io, dir).size();
  store.warnings_ = store.journal_.recovered().warnings;

  // 3. Deterministic replay of the journal suffix.
  for (const JournalRecord& record : store.journal_.recovered().records) {
    if (record.seq <= checkpoint_seq) {
      // Already folded into the checkpoint (crash between the checkpoint
      // rename and the journal rotation). Skip, but note it: the next
      // checkpoint will clear these out.
      store.warnings_.push_back(
          StrCat("journal record seq=", record.seq,
                 " is covered by checkpoint seq=", checkpoint_seq,
                 "; skipped"));
      continue;
    }
    if (record.seq != store.last_seq_ + 1) {
      return Status::Inconsistent(
          StrCat("journal replay: expected seq ", store.last_seq_ + 1,
                 ", found ", record.seq));
    }
    if (store.db_.oids_issued() > record.gen_before) {
      return Status::Inconsistent(
          StrCat("journal replay: record seq=", record.seq,
                 " starts at oid-generator position ", record.gen_before,
                 " but ", store.db_.oids_issued(), " already issued"));
    }
    // Re-create the oid gap left by rejected (unjournaled) applications
    // so invented oids replay byte-identically.
    store.db_.oid_generator()->FastForward(record.gen_before);
    EvalOptions replay_options;
    replay_options.budget = Budget::Unlimited();
    auto replayed =
        store.db_.ApplySource(record.module_source, record.mode,
                              replay_options);
    if (!replayed.ok()) {
      return replayed.status().WithContext(
          StrCat("journal replay of seq=", record.seq, " failed"));
    }
    if (store.db_.oids_issued() != record.gen_after) {
      return Status::Inconsistent(
          StrCat("journal replay: seq=", record.seq, " ended at generator ",
                 store.db_.oids_issued(), ", journal recorded ",
                 record.gen_after, " (non-deterministic replay?)"));
    }
    store.last_seq_ = record.seq;
    store.replayed_at_open_++;
  }
  return store;
}

Status JournaledDatabase::NoteFailure(Status failure) {
  if (failure.code() == StatusCode::kUnavailable && !degraded_) {
    degraded_ = true;
    degraded_reason_ = failure;
    warnings_.push_back(
        StrCat("entering read-only degraded mode: ", failure.ToString()));
  }
  return failure;
}

Result<ModuleResult> JournaledDatabase::ApplySource(
    const std::string& source, ApplicationMode mode,
    const EvalOptions& options) {
  if (degraded_) {
    // Refuse up front: the state (and the oid generator) is untouched, so
    // a recovered store continues exactly where the last ack left off.
    return Status::Unavailable(
        StrCat("store is in read-only degraded mode (reopen to recover); "
               "cause: ", degraded_reason_.ToString()));
  }
  // Apply() is transactional in process; we snapshot anyway so a failed
  // journal append can undo an otherwise-successful application — memory
  // must never acknowledge a commit the disk does not have.
  Database::Snapshot snapshot = db_.TakeSnapshot();
  uint64_t gen_before = db_.oids_issued();
  LOGRES_ASSIGN_OR_RETURN(ModuleResult result,
                          db_.ApplySource(source, mode, options));

  JournalRecord record;
  record.seq = last_seq_ + 1;
  record.mode = mode;
  record.gen_before = gen_before;
  record.gen_after = db_.oids_issued();
  record.steps = result.stats.steps;
  record.facts = result.stats.facts;
  record.module_source = source;

  Status appended = journal_.Append(record);
  if (!appended.ok()) {
    // The oid generator stays where it is, matching the rejected-apply
    // policy: consumed oids are never reused. A persistent I/O fault
    // (kUnavailable) additionally degrades the store; an injected
    // failpoint (ExecutionError) does not — the disk is fine.
    db_.RestoreSnapshot(std::move(snapshot));
    return NoteFailure(appended.WithContext(
        "journal append failed; application rolled back"));
  }
  last_seq_ = record.seq;
  steps_total_ += result.stats.steps;
  facts_last_ = result.stats.facts;

  if (options_.checkpoint_interval > 0 &&
      last_seq_ - checkpoint_seq_ >= options_.checkpoint_interval) {
    // The commit is already durable; a failed background checkpoint must
    // not fail it. Record the problem and move on — the journal still
    // covers everything.
    Status st = Checkpoint();
    if (!st.ok()) {
      warnings_.push_back(
          StrCat("auto-checkpoint failed: ", st.ToString()));
    }
  }
  return result;
}

Result<ModuleResult> JournaledDatabase::ApplyByName(
    const std::string& name, const EvalOptions& options) {
  const Module* found = nullptr;
  for (const Module& module : db_.registered_modules()) {
    if (module.name == name) {
      found = &module;
      break;
    }
  }
  if (found == nullptr) {
    return Status::NotFound(StrCat("no registered module named '", name,
                                   "'"));
  }
  // Journal the module's own serialized source so the record is
  // self-contained: replay re-parses it and never consults the registry.
  std::string source = ModuleToSource(*found);
  ApplicationMode mode =
      found->default_mode.value_or(ApplicationMode::kRIDI);
  return ApplySource(source, mode, options);
}

Status JournaledDatabase::WriteCheckpoint() {
  LOGRES_FAILPOINT("checkpoint.write");
  std::string text = StrCat(kCheckpointHeaderPrefix, last_seq_, "\n",
                            DumpDatabase(db_));
  std::string tmp_path = StrCat(dir_, "/", kCheckpointTmpName);
  std::string checkpoint_path = StrCat(dir_, "/", kCheckpointName);
  LOGRES_RETURN_NOT_OK(WriteFileSynced(*io_, tmp_path, text));
  LOGRES_FAILPOINT("checkpoint.rename");
  IoResult renamed = io_->Rename(tmp_path, checkpoint_path);
  if (!renamed.ok()) {
    return IoErrorStatus(renamed, StrCat("rename ", tmp_path));
  }
  LOGRES_RETURN_NOT_OK(SyncDir(*io_, dir_));
  checkpoint_seq_ = last_seq_;
  return Status::OK();
}

Status JournaledDatabase::RotateJournal() {
  std::string path = StrCat(dir_, "/", kJournalName);
  std::string rotated =
      StrCat(path, ".", checkpoint_seq_, kRotatedSuffix);
  IoResult renamed = io_->Rename(path, rotated);
  if (!renamed.ok()) {
    // Nothing moved: the live journal is untouched and still appendable
    // (its records are merely redundant with the checkpoint).
    return IoErrorStatus(renamed, StrCat("rotate journal to ", rotated));
  }
  // A crash here is benign: Open() creates a fresh journal when the file
  // is missing, and every record in the rotated file is covered by the
  // checkpoint. Journal::Open fsyncs the new file and the directory,
  // making the rename and the creation durable together.
  auto fresh = Journal::Open(path, io_);
  if (!fresh.ok()) {
    // Put the live journal back under its canonical name so appends
    // through the still-open fd stay reachable by recovery.
    IoResult back = io_->Rename(rotated, path);
    if (!back.ok()) {
      // The open fd now writes to a file recovery will never read; no
      // append can be allowed until a Reopen re-establishes the layout.
      return NoteFailure(Status::Unavailable(
          StrCat("journal rotation failed (", fresh.status().ToString(),
                 ") and the live journal could not be moved back (",
                 std::strerror(back.err),
                 "); reopen the store to recover")));
    }
    return fresh.status().WithContext("journal rotation aborted");
  }
  journal_ = std::move(fresh).value();
  rotated_journals_++;
  PruneRotatedJournals();
  return Status::OK();
}

void JournaledDatabase::PruneRotatedJournals() {
  std::vector<uint64_t> seqs = ListRotatedJournals(*io_, dir_);
  rotated_journals_ = seqs.size();
  if (seqs.size() <= options_.rotated_journals_keep) return;
  size_t drop = seqs.size() - options_.rotated_journals_keep;
  for (size_t i = 0; i < drop; ++i) {
    std::string victim = StrCat(dir_, "/", kJournalName, ".", seqs[i],
                                kRotatedSuffix);
    IoResult gone = io_->Unlink(victim);
    if (gone.ok()) {
      rotated_journals_--;
    } else {
      warnings_.push_back(StrCat("pruning rotated journal ", victim,
                                 " failed: ", std::strerror(gone.err)));
    }
  }
}

Status JournaledDatabase::Checkpoint() {
  if (degraded_) {
    return Status::Unavailable(
        StrCat("store is in read-only degraded mode (reopen to recover); "
               "cause: ", degraded_reason_.ToString()));
  }
  LOGRES_RETURN_NOT_OK(WriteCheckpoint());
  // A crash (or injected fault) between the rename above and the
  // rotation/reset below leaves stale records in the journal; recovery
  // skips them by seq, so this window is benign.
  LOGRES_FAILPOINT("checkpoint.truncate");
  Status st = options_.rotated_journals_keep == 0 ? journal_.Reset()
                                                  : RotateJournal();
  if (!st.ok() && journal_.tail_suspect()) {
    // The journal refuses appends until re-verified; surface that as
    // degradation now rather than on the next apply.
    return NoteFailure(
        st.code() == StatusCode::kUnavailable
            ? st
            : Status::Unavailable(st.ToString()));
  }
  return st;
}

Status JournaledDatabase::Reopen() {
  uint64_t acked_seq = last_seq_;
  uint64_t steps_total = steps_total_;
  uint64_t facts_last = facts_last_;
  std::vector<std::string> warnings = warnings_;

  auto reopened = Open(dir_, options_);
  if (!reopened.ok()) {
    Status st = reopened.status().WithContext(
        degraded_ ? "reopen failed; store remains degraded"
                  : "reopen failed");
    warnings_.push_back(st.ToString());
    return st;
  }
  if (reopened->last_seq_ < acked_seq) {
    // The disk lost acknowledged commits (the fsync-failure scenario this
    // exists to catch). Resuming would silently fork history; stay
    // read-only and report the gap.
    degraded_ = true;
    degraded_reason_ = Status::Inconsistent(
        StrCat("reopen recovered seq ", reopened->last_seq_,
               " but seq ", acked_seq,
               " was acknowledged; durability gap — store remains "
               "read-only"));
    warnings_.push_back(degraded_reason_.ToString());
    return degraded_reason_;
  }

  *this = std::move(reopened).value();
  steps_total_ = steps_total;
  facts_last_ = facts_last;
  warnings.push_back(
      StrCat("reopen: recovery re-verified the journal through seq ",
             last_seq_, "; store resumed"));
  warnings.insert(warnings.end(), warnings_.begin(), warnings_.end());
  warnings_ = std::move(warnings);
  return Status::OK();
}

StorageStatus JournaledDatabase::status() const {
  StorageStatus s;
  s.last_seq = last_seq_;
  s.checkpoint_seq = checkpoint_seq_;
  s.journal_records = journal_.live_records();
  s.journal_bytes = journal_.size_bytes();
  s.replayed_at_open = replayed_at_open_;
  s.truncated_bytes_at_open = journal_.recovered().torn_bytes;
  s.rotated_journals = rotated_journals_;
  s.steps_total = steps_total_;
  s.facts_last = facts_last_;
  s.degraded = degraded_;
  if (degraded_) s.degraded_reason = degraded_reason_.ToString();
  s.warnings = warnings_;
  return s;
}

}  // namespace logres
