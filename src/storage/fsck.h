// Store integrity checking: the shared artifact checker behind the
// online scrub (`JournaledDatabase::Scrub`, shell `scrub`) and the
// offline checker/repairer (`FsckStore`, `tools/logres_fsck`).
//
// The checker is strictly read-only and goes through the `Io` seam, so
// scrub can run against a live store without blocking writers and fsck
// can be fault-injected in tests. Verdicts are split into *errors*
// (corrupt checkpoint generations, corrupt sealed journals, a broken
// replay chain — anything that reduces what recovery can reach) and
// *notes* (torn live-journal tail, stale records, CHECKPOINT.tmp debris,
// v1 checkpoints — expected crash artifacts recovery already handles).
// Only errors make a store "not clean".
//
// `FsckStore(..., {repair: true})` is the offline repair ladder:
// quarantine every corrupt artifact (rename to `<name>.quarantine` —
// never delete evidence), drop unreachable journal suffixes past a
// replay-chain break, run full `JournaledDatabase::Open` recovery, and
// seal the recovered state with a fresh verified v2 checkpoint. Crash
// site: `fsck.repair` (between quarantine and the reseal) — the
// crash matrix asserts a store killed mid-repair still reopens onto an
// acked state.

#ifndef LOGRES_STORAGE_FSCK_H_
#define LOGRES_STORAGE_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/io.h"
#include "util/status.h"

namespace logres {

/// \brief One store artifact's integrity verdict.
struct StoreFileCheck {
  std::string name;     ///< file name within the store directory
  std::string kind;     ///< checkpoint | checkpoint-generation | journal |
                        ///< rotated-journal | checkpoint-tmp | other
  std::string verdict;  ///< ok | unverified-v1 | corrupt | torn-tail |
                        ///< debris | ignored
  bool error = false;   ///< counts against a clean bill of health
  uint64_t bytes = 0;
  uint64_t seq = 0;      ///< covered/name seq when the name carries one
  uint64_t records = 0;  ///< valid records (journal files)
  std::string detail;    ///< human-readable reason for the verdict
};

/// \brief Read-only integrity pass over every artifact in \p dir:
/// checkpoint generations are envelope-verified (header, v2 CRC footer)
/// and parse-checked, journal files are frame-scanned. Never mutates the
/// store.
std::vector<StoreFileCheck> CheckStoreFiles(Io& io, const std::string& dir);

struct FsckOptions {
  /// Quarantine corrupt artifacts and rewrite a verified checkpoint.
  /// Requires exclusive access to the store (offline).
  bool repair = false;
  /// File operations go through this (PosixIo when null; borrowed).
  Io* io = nullptr;
};

struct FsckReport {
  /// Per-file verdicts (post-repair state when repair ran).
  std::vector<StoreFileCheck> files;
  /// Cross-file findings: replay-chain breaks, uncovered generations,
  /// "no usable generation at all".
  std::vector<std::string> store_findings;
  /// Actions --repair took, in order.
  std::vector<std::string> repairs;
  /// Error-level findings (file and store level). 0 = clean.
  uint64_t errors = 0;
  /// Non-error observations.
  uint64_t notes = 0;
  /// True when at least one checkpoint generation is usable.
  bool recoverable = false;
  /// Highest commit seq a recovery of this store reaches.
  uint64_t recovered_seq = 0;
  /// Machine-readable line report (one `fsck <key>=<value>...` line per
  /// file and finding, then a summary line).
  std::string ToText() const;
};

/// \brief Checks (and with \p options.repair, repairs) the store at
/// \p dir. Errors out only when the directory cannot be walked or a
/// requested repair could not complete; a merely-corrupt store is a
/// *report*, not an error.
Result<FsckReport> FsckStore(const std::string& dir,
                             const FsckOptions& options = {});

}  // namespace logres

#endif  // LOGRES_STORAGE_FSCK_H_
