// The ALGRES extended relational algebra.
//
// ALGRES supports "complex objects, extended relational operations and
// fixpoint operators" (paper Section 5). This module provides the classical
// operators (selection, projection, renaming, product, joins, set
// operations), the NF² restructuring operators (nest, unnest), value
// computation (extend, aggregate), and the *liberal* closure operator:
// a fixpoint combinator whose step function and accumulation discipline
// (inflationary vs replacement) are caller-supplied — the property the paper
// singles out as what "makes it possible to change the semantics of rules
// very easily" (Section 1).
//
// All operators are pure: they consume const relations and produce fresh
// ones. Errors (unknown columns, arity clashes, kind mismatches) surface as
// Status, never as exceptions.

#ifndef LOGRES_ALGRES_ALGEBRA_H_
#define LOGRES_ALGRES_ALGEBRA_H_

#include <functional>
#include <string>
#include <vector>

#include "algres/relation.h"
#include "util/governor.h"
#include "util/status.h"

namespace logres {
class ThreadPool;
}  // namespace logres

namespace logres::algres {

/// \brief A row predicate for Select. Receives the row; column positions
/// are resolved by the caller against the input relation.
using RowPredicate = std::function<Result<bool>(const Row&)>;

/// \brief Computes a new cell from a row (for Extend).
using RowFunction = std::function<Result<Value>(const Row&)>;

// ---- Classical operators ---------------------------------------------------

/// \brief σ: rows of \p input satisfying \p pred.
Result<Relation> Select(const Relation& input, const RowPredicate& pred);

/// \brief π: keeps the named columns, in the given order; deduplicates.
Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& columns);

/// \brief ρ: renames columns pairwise (old -> new).
Result<Relation> Rename(
    const Relation& input,
    const std::vector<std::pair<std::string, std::string>>& renames);

/// \brief ×: Cartesian product. Column names must be disjoint.
Result<Relation> Product(const Relation& left, const Relation& right);

/// \brief ⋈: natural join on all shared column names (product if none).
///
/// A non-null \p pool partitions the probe phase: the build side's hash
/// index is constructed serially, then contiguous chunks of the left
/// side's rows probe it concurrently, and the per-chunk outputs are
/// inserted in chunk order — exactly the serial insertion order, so the
/// result (rows *and* storage order) is identical for every pool size.
Result<Relation> NaturalJoin(const Relation& left, const Relation& right,
                             ThreadPool* pool = nullptr);

/// \brief Equi-join on explicit column pairs (left name, right name).
/// Right join columns are dropped from the result. See NaturalJoin for
/// the \p pool contract.
Result<Relation> EquiJoin(
    const Relation& left, const Relation& right,
    const std::vector<std::pair<std::string, std::string>>& on,
    ThreadPool* pool = nullptr);

/// \brief θ-join: product filtered by a predicate over the combined row
/// (left columns first). Column names must be disjoint.
Result<Relation> ThetaJoin(const Relation& left, const Relation& right,
                           const RowPredicate& theta);

/// \brief ⋉ (semi-join): left rows with at least one natural-join partner
/// in right. See NaturalJoin for the \p pool contract.
Result<Relation> SemiJoin(const Relation& left, const Relation& right,
                          ThreadPool* pool = nullptr);

/// \brief ▷ (anti-join): left rows with no natural-join partner in right.
/// See NaturalJoin for the \p pool contract.
Result<Relation> AntiJoin(const Relation& left, const Relation& right,
                          ThreadPool* pool = nullptr);

/// \brief ÷ (division): rows of \p dividend (projected on its non-divisor
/// columns) paired with *every* row of \p divisor. The divisor's columns
/// must be a proper subset of the dividend's.
Result<Relation> Divide(const Relation& dividend, const Relation& divisor);

/// \brief ∪, ∩, −: inputs must have identical column lists.
Result<Relation> Union(const Relation& left, const Relation& right);
Result<Relation> Intersect(const Relation& left, const Relation& right);
Result<Relation> Difference(const Relation& left, const Relation& right);

// ---- NF² restructuring ------------------------------------------------------

/// \brief ν (nest): groups rows by all columns except \p nested, collecting
/// the \p nested cells of each group into a set value stored in column
/// \p as (paper's data functions perform nesting this way, Example 3.2).
Result<Relation> Nest(const Relation& input,
                      const std::vector<std::string>& nested,
                      const std::string& as);

/// \brief μ (unnest): replaces the collection-valued column \p column by
/// one row per element. Tuple elements with labels are spread into columns
/// when \p spread_tuple is true; otherwise the element lands in a single
/// column named \p column.
Result<Relation> Unnest(const Relation& input, const std::string& column,
                        bool spread_tuple = false);

// ---- Computation ------------------------------------------------------------

/// \brief Adds a computed column \p name = fn(row).
Result<Relation> Extend(const Relation& input, const std::string& name,
                        const RowFunction& fn);

/// \brief Supported aggregate functions over a column.
enum class AggregateKind { kCount, kSum, kMin, kMax, kAvg };

/// \brief Groups by \p group_by and aggregates \p target into \p as.
/// kCount ignores \p target (pass any existing column or "").
Result<Relation> Aggregate(const Relation& input,
                           const std::vector<std::string>& group_by,
                           AggregateKind kind, const std::string& target,
                           const std::string& as);

// ---- The liberal closure (fixpoint) operator --------------------------------

/// \brief How the closure accumulates each step's output.
enum class ClosureSemantics {
  /// F_{i+1} = F_i ∪ step(F_i): the inflationary discipline LOGRES builds
  /// its deterministic semantics on (Appendix B).
  kInflationary,
  /// F_{i+1} = step(F_i): full replacement; the non-inflationary variant
  /// Section 3 mentions as the second language LOGRES can host.
  kReplacement,
};

struct ClosureOptions {
  ClosureSemantics semantics = ClosureSemantics::kInflationary;
  /// Abort with Status::Divergence after this many steps (0 = unbounded).
  /// Shares its default with every other fixpoint engine (governor.h).
  size_t max_steps = kDefaultMaxSteps;
};

/// \brief One step of a closure: maps the current relation to new rows.
using ClosureStep = std::function<Result<Relation>(const Relation&)>;

/// \brief Iterates \p step from \p seed until a fixpoint F_{i+1} == F_i.
///
/// With kInflationary the sequence is monotone and terminates whenever the
/// active domain is finite; with kReplacement termination is the caller's
/// problem (max_steps guards divergence, mirroring the paper's note that
/// termination "is not guaranteed, and it is not even decidable").
Result<Relation> Closure(const Relation& seed, const ClosureStep& step,
                         const ClosureOptions& options = {});

/// \brief Semi-naive transitive-closure-style iteration: \p delta_step
/// receives only the rows added in the previous round and returns candidate
/// new rows. Correct for distributive (positive, function-free) steps; used
/// by the semi-naive evaluation mode and the Datalog baseline comparisons.
Result<Relation> SemiNaiveClosure(const Relation& seed,
                                  const ClosureStep& delta_step,
                                  const ClosureOptions& options = {});

}  // namespace logres::algres

#endif  // LOGRES_ALGRES_ALGEBRA_H_
