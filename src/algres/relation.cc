#include "algres/relation.h"

#include <algorithm>

#include "util/string_util.h"

namespace logres::algres {

Result<Relation> Relation::Make(std::vector<std::string> columns,
                                std::vector<Row> rows) {
  Relation rel(std::move(columns));
  for (Row& row : rows) {
    LOGRES_ASSIGN_OR_RETURN(bool inserted, rel.Insert(std::move(row)));
    (void)inserted;
  }
  return rel;
}

Result<size_t> Relation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return Status::NotFound(StrCat("no column '", name, "' in relation [",
                                 Join(columns_, ", "), "]"));
}

bool Relation::HasColumn(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c == name) return true;
  }
  return false;
}

uint32_t Relation::FindRow(size_t hash, const Row& row) const {
  auto it = buckets_.find(hash);
  if (it == buckets_.end()) return kNpos;
  for (uint32_t id : it->second) {
    if (rows_[id] == row) return id;
  }
  return kNpos;
}

Result<bool> Relation::Insert(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrCat("row arity ", row.size(), " != relation arity ",
               columns_.size()));
  }
  size_t hash = RowHash{}(row);
  if (FindRow(hash, row) != kNpos) return false;
  buckets_[hash].push_back(static_cast<uint32_t>(rows_.size()));
  rows_.push_back(std::move(row));
  indexes_.clear();
  return true;
}

bool Relation::Erase(const Row& row) {
  uint32_t id = FindRow(RowHash{}(row), row);
  if (id == kNpos) return false;
  rows_.erase(rows_.begin() + id);
  RebuildBuckets();
  indexes_.clear();
  return true;
}

void Relation::RebuildBuckets() {
  buckets_.clear();
  for (uint32_t id = 0; id < rows_.size(); ++id) {
    buckets_[RowHash{}(rows_[id])].push_back(id);
  }
}

bool Relation::Contains(const Row& row) const {
  return FindRow(RowHash{}(row), row) != kNpos;
}

std::vector<const Row*> Relation::CanonicalRows() const {
  std::vector<const Row*> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) out.push_back(&row);
  std::sort(out.begin(), out.end(),
            [](const Row* a, const Row* b) { return *a < *b; });
  return out;
}

const RelationIndex& Relation::IndexOn(
    const std::vector<size_t>& cols) const {
  auto it = indexes_.find(cols);
  if (it != indexes_.end()) return it->second;
  RelationIndex index;
  index.cols_ = cols;
  Row key;
  for (uint32_t id = 0; id < rows_.size(); ++id) {
    key.clear();
    for (size_t c : cols) key.push_back(rows_[id][c]);
    index.buckets_[RowHash{}(key)].push_back(id);
  }
  return indexes_.emplace(cols, std::move(index)).first->second;
}

Result<const RelationIndex*> Relation::IndexOnColumns(
    const std::vector<std::string>& names) const {
  std::vector<size_t> cols;
  cols.reserve(names.size());
  for (const std::string& name : names) {
    LOGRES_ASSIGN_OR_RETURN(size_t i, ColumnIndex(name));
    cols.push_back(i);
  }
  return &IndexOn(cols);
}

bool Relation::operator==(const Relation& other) const {
  if (columns_ != other.columns_ || rows_.size() != other.rows_.size()) {
    return false;
  }
  // Both sides are duplicate-free, so equal sizes + containment = equality.
  for (const Row& row : rows_) {
    if (!other.Contains(row)) return false;
  }
  return true;
}

std::string Relation::ToString() const {
  std::string out = StrCat("[", Join(columns_, ", "), "]\n");
  for (const Row* row : CanonicalRows()) {
    out += "  (";
    out += JoinMapped(*row, ", ",
                      [](const Value& v) { return v.ToString(); });
    out += ")\n";
  }
  return out;
}

Status MultisetRelation::Insert(Row row, size_t count) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrCat("row arity ", row.size(), " != relation arity ",
               columns_.size()));
  }
  if (count == 0) return Status::OK();
  rows_[std::move(row)] += count;
  total_ += count;
  return Status::OK();
}

size_t MultisetRelation::Erase(const Row& row, size_t count) {
  auto it = rows_.find(row);
  if (it == rows_.end()) return 0;
  size_t removed = std::min(count, it->second);
  it->second -= removed;
  total_ -= removed;
  if (it->second == 0) rows_.erase(it);
  return removed;
}

size_t MultisetRelation::Count(const Row& row) const {
  auto it = rows_.find(row);
  return it == rows_.end() ? 0 : it->second;
}

Relation MultisetRelation::ToRelation() const {
  Relation rel(columns_);
  for (const auto& [row, count] : rows_) {
    (void)count;
    (void)rel.Insert(row);
  }
  return rel;
}

}  // namespace logres::algres
