#include "algres/relation.h"

#include "util/string_util.h"

namespace logres::algres {

Result<Relation> Relation::Make(std::vector<std::string> columns,
                                std::vector<Row> rows) {
  Relation rel(std::move(columns));
  for (Row& row : rows) {
    LOGRES_ASSIGN_OR_RETURN(bool inserted, rel.Insert(std::move(row)));
    (void)inserted;
  }
  return rel;
}

Result<size_t> Relation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return Status::NotFound(StrCat("no column '", name, "' in relation [",
                                 Join(columns_, ", "), "]"));
}

bool Relation::HasColumn(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c == name) return true;
  }
  return false;
}

Result<bool> Relation::Insert(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrCat("row arity ", row.size(), " != relation arity ",
               columns_.size()));
  }
  return rows_.insert(std::move(row)).second;
}

bool Relation::Erase(const Row& row) { return rows_.erase(row) > 0; }

std::string Relation::ToString() const {
  std::string out = StrCat("[", Join(columns_, ", "), "]\n");
  for (const Row& row : rows_) {
    out += "  (";
    out += JoinMapped(row, ", ", [](const Value& v) { return v.ToString(); });
    out += ")\n";
  }
  return out;
}

Status MultisetRelation::Insert(Row row, size_t count) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrCat("row arity ", row.size(), " != relation arity ",
               columns_.size()));
  }
  if (count == 0) return Status::OK();
  rows_[std::move(row)] += count;
  total_ += count;
  return Status::OK();
}

size_t MultisetRelation::Erase(const Row& row, size_t count) {
  auto it = rows_.find(row);
  if (it == rows_.end()) return 0;
  size_t removed = std::min(count, it->second);
  it->second -= removed;
  total_ -= removed;
  if (it->second == 0) rows_.erase(it);
  return removed;
}

size_t MultisetRelation::Count(const Row& row) const {
  auto it = rows_.find(row);
  return it == rows_.end() ? 0 : it->second;
}

Relation MultisetRelation::ToRelation() const {
  Relation rel(columns_);
  for (const auto& [row, count] : rows_) {
    (void)count;
    (void)rel.Insert(row);
  }
  return rel;
}

}  // namespace logres::algres
