// NF² relations for the ALGRES substrate.
//
// A Relation is a named-column table whose cells are arbitrary complex
// Values — this is the "extended relation" of ALGRES (paper Section 1,
// [CCLLZ89]): non-first-normal-form, main-memory, duplicate-free by set
// semantics. Multiset relations (needed for the multiset constructor and
// for controlled duplicate handling) are provided by MultisetRelation.

#ifndef LOGRES_ALGRES_RELATION_H_
#define LOGRES_ALGRES_RELATION_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "algres/value.h"
#include "util/status.h"

namespace logres::algres {

using logres::Result;
using logres::Status;
using logres::Value;

/// \brief One row of a relation; cells are positional, column names live in
/// the owning Relation.
using Row = std::vector<Value>;

/// \brief A duplicate-free NF² relation (set of rows over named columns).
class Relation {
 public:
  Relation() = default;

  /// \brief An empty relation with the given column names.
  explicit Relation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// \brief Builds a relation and bulk-inserts \p rows (arity-checked).
  static Result<Relation> Make(std::vector<std::string> columns,
                               std::vector<Row> rows);

  const std::vector<std::string>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// \brief Index of a column by name; error if absent.
  Result<size_t> ColumnIndex(const std::string& name) const;

  bool HasColumn(const std::string& name) const;

  /// \brief Inserts a row; returns true if it was new. Error on arity
  /// mismatch.
  Result<bool> Insert(Row row);

  /// \brief Removes a row; returns true if it was present.
  bool Erase(const Row& row);

  bool Contains(const Row& row) const { return rows_.count(row) > 0; }

  const std::set<Row>& rows() const { return rows_; }

  auto begin() const { return rows_.begin(); }
  auto end() const { return rows_.end(); }

  /// \brief True when columns and rows are identical.
  bool operator==(const Relation& other) const {
    return columns_ == other.columns_ && rows_ == other.rows_;
  }

  /// \brief Rows rendered one per line, with a header.
  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
  std::set<Row> rows_;
};

/// \brief A relation with duplicate rows tracked by multiplicity.
class MultisetRelation {
 public:
  MultisetRelation() = default;
  explicit MultisetRelation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }

  /// \brief Total number of rows counting multiplicity.
  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// \brief Adds \p count copies of \p row.
  Status Insert(Row row, size_t count = 1);

  /// \brief Removes up to \p count copies; returns how many were removed.
  size_t Erase(const Row& row, size_t count = 1);

  size_t Count(const Row& row) const;

  const std::map<Row, size_t>& rows() const { return rows_; }

  /// \brief Collapses duplicates into a set-semantics Relation.
  Relation ToRelation() const;

 private:
  std::vector<std::string> columns_;
  std::map<Row, size_t> rows_;
  size_t total_ = 0;
};

}  // namespace logres::algres

#endif  // LOGRES_ALGRES_RELATION_H_
