// NF² relations for the ALGRES substrate.
//
// A Relation is a named-column table whose cells are arbitrary complex
// Values — this is the "extended relation" of ALGRES (paper Section 1,
// [CCLLZ89]): non-first-normal-form, main-memory, duplicate-free by set
// semantics. Multiset relations (needed for the multiset constructor and
// for controlled duplicate handling) are provided by MultisetRelation.
//
// Storage is an insertion-stable row vector plus a hash bucket table over
// the rows' memoized Value hashes: Insert/Contains are O(1) expected
// instead of a deep tree comparison per level of a std::set. With the
// value interner on (algres/interner.h, the default) the residual deep
// compares on bucket collisions collapse too: cells are canonical nodes,
// so Value::operator== inside FindRow and the join-key maps is a pointer
// comparison. On-demand
// secondary indexes over column subsets (IndexOn) give the algebra its
// build/probe hash joins; every mutation invalidates them. Iteration
// order is insertion order; canonical (sorted) order — the order dumps
// and ToString() must keep byte-stable — is available via CanonicalRows().

#ifndef LOGRES_ALGRES_RELATION_H_
#define LOGRES_ALGRES_RELATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "algres/value.h"
#include "util/status.h"

namespace logres::algres {

using logres::Result;
using logres::Status;
using logres::Value;

/// \brief One row of a relation; cells are positional, column names live in
/// the owning Relation.
using Row = std::vector<Value>;

/// \brief Order-dependent combination of the rows' memoized cell hashes.
struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0xcbf29ce484222325ull;
    for (const Value& cell : row) {
      h = (h ^ cell.Hash()) * 0x100000001b3ull;
    }
    return h;
  }
};

/// \brief A secondary access path: rows of the owning Relation bucketed by
/// the hash of a column subset. Obtained from Relation::IndexOn and
/// invalidated by any mutation of the relation (take it fresh per probe
/// batch; do not hold one across Insert/Erase).
class RelationIndex {
 public:
  /// \brief The indexed column positions, in key order.
  const std::vector<size_t>& key_columns() const { return cols_; }

  /// \brief Row ids whose key cells *hash* like \p key (callers verify
  /// equality; Relation::ForEachMatch does so for you). Null when no row
  /// matches.
  const std::vector<uint32_t>* Probe(const Row& key) const {
    auto it = buckets_.find(RowHash{}(key));
    return it == buckets_.end() ? nullptr : &it->second;
  }

 private:
  friend class Relation;
  std::vector<size_t> cols_;
  std::unordered_map<size_t, std::vector<uint32_t>> buckets_;
};

/// \brief A duplicate-free NF² relation (set of rows over named columns).
class Relation {
 public:
  Relation() = default;

  /// \brief An empty relation with the given column names.
  explicit Relation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  // Secondary indexes are rebuilt on demand, never copied: a copied
  // relation starts with cold caches (the primary buckets do travel).
  Relation(const Relation& other)
      : columns_(other.columns_),
        rows_(other.rows_),
        buckets_(other.buckets_) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      columns_ = other.columns_;
      rows_ = other.rows_;
      buckets_ = other.buckets_;
      indexes_.clear();
    }
    return *this;
  }
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// \brief Builds a relation and bulk-inserts \p rows (arity-checked).
  static Result<Relation> Make(std::vector<std::string> columns,
                               std::vector<Row> rows);

  const std::vector<std::string>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// \brief Index of a column by name; error if absent.
  Result<size_t> ColumnIndex(const std::string& name) const;

  bool HasColumn(const std::string& name) const;

  /// \brief Inserts a row; returns true if it was new. Error on arity
  /// mismatch.
  Result<bool> Insert(Row row);

  /// \brief Removes a row; returns true if it was present. Later rows keep
  /// their relative (insertion) order.
  bool Erase(const Row& row);

  bool Contains(const Row& row) const;

  /// \brief Rows in insertion order.
  const std::vector<Row>& rows() const { return rows_; }

  auto begin() const { return rows_.begin(); }
  auto end() const { return rows_.end(); }

  /// \brief Row pointers in canonical (sorted) order — the order the old
  /// std::set storage iterated in, which ToString() and dumps pin.
  std::vector<const Row*> CanonicalRows() const;

  /// \brief The hash index over \p cols (column positions), built on first
  /// use and cached until the next mutation. \p cols must be valid
  /// positions.
  const RelationIndex& IndexOn(const std::vector<size_t>& cols) const;

  /// \brief Name-based convenience over IndexOn; error on unknown columns.
  Result<const RelationIndex*> IndexOnColumns(
      const std::vector<std::string>& names) const;

  /// \brief Calls \p fn for every row whose \p index key columns equal
  /// \p key (hash probe + equality verification).
  template <typename Fn>
  void ForEachMatch(const RelationIndex& index, const Row& key,
                    Fn&& fn) const {
    const std::vector<uint32_t>* ids = index.Probe(key);
    if (ids == nullptr) return;
    for (uint32_t id : *ids) {
      const Row& row = rows_[id];
      bool match = true;
      for (size_t k = 0; k < index.cols_.size(); ++k) {
        if (!(row[index.cols_[k]] == key[k])) {
          match = false;
          break;
        }
      }
      if (match) fn(row);
    }
  }

  /// \brief True when columns and row *sets* are identical (storage order
  /// is irrelevant).
  bool operator==(const Relation& other) const;

  /// \brief Rows rendered one per line, canonical order, with a header.
  std::string ToString() const;

 private:
  // Row ids in the primary bucket for `hash` whose row equals `row`, or
  // npos. Deep-compares only on hash collision.
  static constexpr uint32_t kNpos = static_cast<uint32_t>(-1);
  uint32_t FindRow(size_t hash, const Row& row) const;
  void RebuildBuckets();

  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  // Primary access path: row hash -> ids of rows with that hash.
  std::unordered_map<size_t, std::vector<uint32_t>> buckets_;
  // Secondary access paths, keyed by indexed column positions. Lazily
  // built; cleared by Insert/Erase (and not copied — see the copy ctor).
  mutable std::map<std::vector<size_t>, RelationIndex> indexes_;
};

/// \brief A relation with duplicate rows tracked by multiplicity.
class MultisetRelation {
 public:
  MultisetRelation() = default;
  explicit MultisetRelation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }

  /// \brief Total number of rows counting multiplicity.
  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// \brief Adds \p count copies of \p row.
  Status Insert(Row row, size_t count = 1);

  /// \brief Removes up to \p count copies; returns how many were removed.
  size_t Erase(const Row& row, size_t count = 1);

  size_t Count(const Row& row) const;

  const std::map<Row, size_t>& rows() const { return rows_; }

  /// \brief Collapses duplicates into a set-semantics Relation.
  Relation ToRelation() const;

 private:
  std::vector<std::string> columns_;
  std::map<Row, size_t> rows_;
  size_t total_ = 0;
};

}  // namespace logres::algres

#endif  // LOGRES_ALGRES_RELATION_H_
