#include "algres/value.h"

#include <algorithm>
#include <variant>

#include "util/string_util.h"

namespace logres {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNil: return "nil";
    case ValueKind::kBool: return "bool";
    case ValueKind::kInt: return "integer";
    case ValueKind::kReal: return "real";
    case ValueKind::kString: return "string";
    case ValueKind::kOid: return "oid";
    case ValueKind::kTuple: return "tuple";
    case ValueKind::kSet: return "set";
    case ValueKind::kMultiset: return "multiset";
    case ValueKind::kSequence: return "sequence";
  }
  return "unknown";
}

struct Value::Rep {
  ValueKind kind = ValueKind::kNil;
  // Scalar payloads.
  bool b = false;
  int64_t i = 0;
  double d = 0.0;
  std::string s;
  Oid oid;
  // Composite payloads. For kTuple, `fields` is used; for collections,
  // `elems` (sets: sorted+unique; multisets: sorted with duplicates;
  // sequences: in insertion order).
  std::vector<std::pair<std::string, Value>> fields;
  std::vector<Value> elems;
  // Cached hash (computed eagerly at construction; reps are immutable).
  size_t hash = 0;
};

namespace {

size_t HashRep(const Value::Rep& rep);

std::shared_ptr<const Value::Rep> MakeRep(Value::Rep rep) {
  rep.hash = HashRep(rep);
  return std::make_shared<const Value::Rep>(std::move(rep));
}

// The shared nil rep: all default-constructed Values point here.
const std::shared_ptr<const Value::Rep>& NilRep() {
  static const std::shared_ptr<const Value::Rep> kNil =
      MakeRep(Value::Rep{});
  return kNil;
}

size_t HashRep(const Value::Rep& rep) {
  size_t seed = static_cast<size_t>(rep.kind) * 0x9e3779b97f4a7c15ULL;
  switch (rep.kind) {
    case ValueKind::kNil:
      break;
    case ValueKind::kBool:
      HashCombine(&seed, rep.b ? 1u : 2u);
      break;
    case ValueKind::kInt:
      HashCombine(&seed, std::hash<int64_t>()(rep.i));
      break;
    case ValueKind::kReal:
      HashCombine(&seed, std::hash<double>()(rep.d));
      break;
    case ValueKind::kString:
      HashCombine(&seed, std::hash<std::string>()(rep.s));
      break;
    case ValueKind::kOid:
      HashCombine(&seed, std::hash<uint64_t>()(rep.oid.id));
      break;
    case ValueKind::kTuple:
      for (const auto& [label, v] : rep.fields) {
        HashCombine(&seed, std::hash<std::string>()(label));
        HashCombine(&seed, v.Hash());
      }
      break;
    case ValueKind::kSet:
    case ValueKind::kMultiset:
    case ValueKind::kSequence:
      for (const Value& v : rep.elems) HashCombine(&seed, v.Hash());
      break;
  }
  return seed;
}

}  // namespace

Value::Value() : rep_(NilRep()) {}

Value Value::Nil() { return Value(); }

Value Value::Bool(bool b) {
  Rep rep;
  rep.kind = ValueKind::kBool;
  rep.b = b;
  return Value(MakeRep(std::move(rep)));
}

Value Value::Int(int64_t i) {
  Rep rep;
  rep.kind = ValueKind::kInt;
  rep.i = i;
  return Value(MakeRep(std::move(rep)));
}

Value Value::Real(double d) {
  Rep rep;
  rep.kind = ValueKind::kReal;
  rep.d = d;
  return Value(MakeRep(std::move(rep)));
}

Value Value::String(std::string s) {
  Rep rep;
  rep.kind = ValueKind::kString;
  rep.s = std::move(s);
  return Value(MakeRep(std::move(rep)));
}

Value Value::MakeOid(Oid oid) {
  Rep rep;
  rep.kind = ValueKind::kOid;
  rep.oid = oid;
  return Value(MakeRep(std::move(rep)));
}

Value Value::MakeTuple(std::vector<std::pair<std::string, Value>> fields) {
  Rep rep;
  rep.kind = ValueKind::kTuple;
  rep.fields = std::move(fields);
  return Value(MakeRep(std::move(rep)));
}

Value Value::MakeSet(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  Rep rep;
  rep.kind = ValueKind::kSet;
  rep.elems = std::move(elements);
  return Value(MakeRep(std::move(rep)));
}

Value Value::MakeMultiset(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end());
  Rep rep;
  rep.kind = ValueKind::kMultiset;
  rep.elems = std::move(elements);
  return Value(MakeRep(std::move(rep)));
}

Value Value::MakeSequence(std::vector<Value> elements) {
  Rep rep;
  rep.kind = ValueKind::kSequence;
  rep.elems = std::move(elements);
  return Value(MakeRep(std::move(rep)));
}

ValueKind Value::kind() const { return rep_->kind; }

bool Value::bool_value() const {
  assert(kind() == ValueKind::kBool);
  return rep_->b;
}

int64_t Value::int_value() const {
  assert(kind() == ValueKind::kInt);
  return rep_->i;
}

double Value::real_value() const {
  assert(kind() == ValueKind::kReal);
  return rep_->d;
}

const std::string& Value::string_value() const {
  assert(kind() == ValueKind::kString);
  return rep_->s;
}

Oid Value::oid_value() const {
  assert(kind() == ValueKind::kOid);
  return rep_->oid;
}

const std::vector<std::pair<std::string, Value>>& Value::tuple_fields()
    const {
  assert(kind() == ValueKind::kTuple);
  return rep_->fields;
}

Result<Value> Value::field(const std::string& label) const {
  if (kind() != ValueKind::kTuple) {
    return Status::TypeError(
        StrCat("field '", label, "' requested on ", ValueKindName(kind()),
               " value ", ToString()));
  }
  for (const auto& [l, v] : rep_->fields) {
    if (l == label) return v;
  }
  return Status::NotFound(
      StrCat("no field '", label, "' in tuple ", ToString()));
}

std::optional<Value> Value::FindField(const std::string& label) const {
  if (kind() != ValueKind::kTuple) return std::nullopt;
  for (const auto& [l, v] : rep_->fields) {
    if (l == label) return v;
  }
  return std::nullopt;
}

size_t Value::size() const {
  if (kind() == ValueKind::kTuple) return rep_->fields.size();
  if (is_collection()) return rep_->elems.size();
  return 0;
}

const std::vector<Value>& Value::elements() const {
  assert(is_collection());
  return rep_->elems;
}

bool Value::Contains(const Value& element) const {
  return Count(element) > 0;
}

size_t Value::Count(const Value& element) const {
  if (!is_collection()) return 0;
  const auto& elems = rep_->elems;
  if (kind() == ValueKind::kSequence) {
    return static_cast<size_t>(
        std::count(elems.begin(), elems.end(), element));
  }
  // Sets and multisets are sorted.
  auto range = std::equal_range(elems.begin(), elems.end(), element);
  return static_cast<size_t>(range.second - range.first);
}

Result<Value> Value::Union(const Value& other) const {
  if (kind() != other.kind() || !is_collection()) {
    return Status::TypeError(
        StrCat("union of incompatible kinds: ", ValueKindName(kind()), ", ",
               ValueKindName(other.kind())));
  }
  std::vector<Value> merged = rep_->elems;
  merged.insert(merged.end(), other.rep_->elems.begin(),
                other.rep_->elems.end());
  switch (kind()) {
    case ValueKind::kSet: return MakeSet(std::move(merged));
    case ValueKind::kMultiset: return MakeMultiset(std::move(merged));
    case ValueKind::kSequence: return MakeSequence(std::move(merged));
    default: break;
  }
  return Status::TypeError("unreachable");
}

Result<Value> Value::Intersect(const Value& other) const {
  if (kind() != other.kind() ||
      (kind() != ValueKind::kSet && kind() != ValueKind::kMultiset)) {
    return Status::TypeError(
        StrCat("intersection of incompatible kinds: ",
               ValueKindName(kind()), ", ", ValueKindName(other.kind())));
  }
  std::vector<Value> out;
  std::set_intersection(rep_->elems.begin(), rep_->elems.end(),
                        other.rep_->elems.begin(), other.rep_->elems.end(),
                        std::back_inserter(out));
  return kind() == ValueKind::kSet ? MakeSet(std::move(out))
                                   : MakeMultiset(std::move(out));
}

Result<Value> Value::Difference(const Value& other) const {
  if (kind() != other.kind() ||
      (kind() != ValueKind::kSet && kind() != ValueKind::kMultiset)) {
    return Status::TypeError(
        StrCat("difference of incompatible kinds: ", ValueKindName(kind()),
               ", ", ValueKindName(other.kind())));
  }
  std::vector<Value> out;
  std::set_difference(rep_->elems.begin(), rep_->elems.end(),
                      other.rep_->elems.begin(), other.rep_->elems.end(),
                      std::back_inserter(out));
  return kind() == ValueKind::kSet ? MakeSet(std::move(out))
                                   : MakeMultiset(std::move(out));
}

Result<Value> Value::Insert(const Value& element) const {
  if (!is_collection()) {
    return Status::TypeError(
        StrCat("insert into non-collection ", ValueKindName(kind())));
  }
  std::vector<Value> elems = rep_->elems;
  elems.push_back(element);
  switch (kind()) {
    case ValueKind::kSet: return MakeSet(std::move(elems));
    case ValueKind::kMultiset: return MakeMultiset(std::move(elems));
    case ValueKind::kSequence: return MakeSequence(std::move(elems));
    default: break;
  }
  return Status::TypeError("unreachable");
}

Result<Value> Value::WithField(const std::string& label,
                               Value value) const {
  if (kind() != ValueKind::kTuple) {
    return Status::TypeError(
        StrCat("WithField on non-tuple ", ValueKindName(kind())));
  }
  auto fields = rep_->fields;
  for (auto& [l, v] : fields) {
    if (l == label) {
      v = std::move(value);
      return MakeTuple(std::move(fields));
    }
  }
  fields.emplace_back(label, std::move(value));
  return MakeTuple(std::move(fields));
}

int Value::Compare(const Value& other) const {
  if (rep_ == other.rep_) return 0;
  if (kind() != other.kind()) {
    return static_cast<int>(kind()) < static_cast<int>(other.kind()) ? -1
                                                                     : 1;
  }
  switch (kind()) {
    case ValueKind::kNil:
      return 0;
    case ValueKind::kBool:
      return (rep_->b == other.rep_->b) ? 0 : (rep_->b ? 1 : -1);
    case ValueKind::kInt:
      if (rep_->i != other.rep_->i) return rep_->i < other.rep_->i ? -1 : 1;
      return 0;
    case ValueKind::kReal:
      if (rep_->d != other.rep_->d) return rep_->d < other.rep_->d ? -1 : 1;
      return 0;
    case ValueKind::kString:
      return rep_->s.compare(other.rep_->s);
    case ValueKind::kOid:
      if (rep_->oid.id != other.rep_->oid.id) {
        return rep_->oid.id < other.rep_->oid.id ? -1 : 1;
      }
      return 0;
    case ValueKind::kTuple: {
      const auto& a = rep_->fields;
      const auto& b = other.rep_->fields;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int lc = a[i].first.compare(b[i].first);
        if (lc != 0) return lc;
        int vc = a[i].second.Compare(b[i].second);
        if (vc != 0) return vc;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
    case ValueKind::kSet:
    case ValueKind::kMultiset:
    case ValueKind::kSequence: {
      const auto& a = rep_->elems;
      const auto& b = other.rep_->elems;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

size_t Value::Hash() const { return rep_->hash; }

size_t Value::ApproxBytes() const {
  size_t bytes = sizeof(Rep);
  bytes += rep_->s.capacity();
  for (const auto& [label, child] : rep_->fields) {
    bytes += label.capacity() + sizeof(std::pair<std::string, Value>);
    bytes += child.ApproxBytes();
  }
  for (const Value& child : rep_->elems) {
    bytes += sizeof(Value) + child.ApproxBytes();
  }
  return bytes;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNil:
      return "nil";
    case ValueKind::kBool:
      return rep_->b ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(rep_->i);
    case ValueKind::kReal: {
      std::string s = StrFormat("%g", rep_->d);
      return s;
    }
    case ValueKind::kString:
      return StrCat("\"", rep_->s, "\"");
    case ValueKind::kOid:
      return StrCat("#", rep_->oid.id);
    case ValueKind::kTuple:
      return StrCat(
          "(",
          JoinMapped(rep_->fields, ", ",
                     [](const std::pair<std::string, Value>& f) {
                       return StrCat(f.first, ": ", f.second.ToString());
                     }),
          ")");
    case ValueKind::kSet:
      return StrCat("{",
                    JoinMapped(rep_->elems, ", ",
                               [](const Value& v) { return v.ToString(); }),
                    "}");
    case ValueKind::kMultiset:
      return StrCat("[",
                    JoinMapped(rep_->elems, ", ",
                               [](const Value& v) { return v.ToString(); }),
                    "]");
    case ValueKind::kSequence:
      return StrCat("<",
                    JoinMapped(rep_->elems, ", ",
                               [](const Value& v) { return v.ToString(); }),
                    ">");
  }
  return "?";
}

}  // namespace logres
