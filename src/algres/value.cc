#include "algres/value.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <mutex>
#include <shared_mutex>
#include <variant>

#include "algres/interner.h"
#include "util/string_util.h"

namespace logres {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNil: return "nil";
    case ValueKind::kBool: return "bool";
    case ValueKind::kInt: return "integer";
    case ValueKind::kReal: return "real";
    case ValueKind::kString: return "string";
    case ValueKind::kOid: return "oid";
    case ValueKind::kTuple: return "tuple";
    case ValueKind::kSet: return "set";
    case ValueKind::kMultiset: return "multiset";
    case ValueKind::kSequence: return "sequence";
  }
  return "unknown";
}

struct Value::Rep {
  ValueKind kind = ValueKind::kNil;
  // Canonical node owned by the ValueInterner (unique per structurally-
  // distinct value among live interned reps).
  bool interned = false;
  // No real number anywhere in this value. Only exact reps are interned:
  // for them structural identity and the total order's equivalence
  // coincide, so two distinct interned reps are provably unequal (the
  // operator== fast path) and sharing can never change semantics. Reals
  // break the coincidence (0.0 and -0.0 compare equal but print
  // differently; NaNs compare unequal to themselves), so real-containing
  // values always take the plain make_shared path.
  bool exact = true;
  // Scalar payloads.
  bool b = false;
  int64_t i = 0;
  double d = 0.0;
  std::string s;
  Oid oid;
  // Composite payloads. For kTuple, `fields` is used; for collections,
  // `elems` (sets: sorted+unique; multisets: sorted with duplicates;
  // sequences: in insertion order).
  std::vector<std::pair<std::string, Value>> fields;
  std::vector<Value> elems;
  // Cached hash (computed eagerly at construction; reps are immutable).
  size_t hash = 0;

  Rep() = default;
  Rep(const Rep&) = default;
  Rep(Rep&&) = default;
  Rep& operator=(const Rep&) = default;
  Rep& operator=(Rep&&) = default;
  // Unlinks interned nodes from their intern-table shard (defined after
  // the table machinery below). Keeping the unlink in the destructor —
  // rather than a custom shared_ptr deleter — lets canonical nodes use
  // the same single-allocation make_shared as the plain path.
  ~Rep();
};

// Named (not anonymous) so Value can befriend it: gives the file-local
// interner machinery access to reps without widening Value's public API.
struct ValueInternAccess {
  static const std::shared_ptr<const Value::Rep>& rep(const Value& v) {
    return v.rep_;
  }
};

namespace {

size_t HashRep(const Value::Rep& rep);

// ---- The hash-consing intern table (see algres/interner.h) -------------

std::atomic<bool> g_intern_enabled{true};

// Shallow footprint of one canonical node: its own payload, not its
// children (children are canonical nodes with their own entry), so the
// sum over live nodes is the deduplicated value-heap size.
size_t ShallowBytes(const Value::Rep& rep) {
  size_t bytes = sizeof(Value::Rep) + rep.s.capacity();
  bytes += rep.fields.capacity() * sizeof(std::pair<std::string, Value>);
  for (const auto& [label, child] : rep.fields) {
    (void)child;
    bytes += label.capacity();
  }
  bytes += rep.elems.capacity() * sizeof(Value);
  return bytes;
}

bool BitEqualValues(const Value& a, const Value& b);

// Structural equality between a candidate rep and a table resident. Both
// sides are exact (real-free — MakeRep only interns exact reps), so this
// coincides with the total order's equivalence; the kReal branch is kept
// defensively and compares by bit pattern.
bool RepEquals(const Value::Rep& a, const Value::Rep& b) {
  if (a.kind != b.kind || a.hash != b.hash) return false;
  switch (a.kind) {
    case ValueKind::kNil:
      return true;
    case ValueKind::kBool:
      return a.b == b.b;
    case ValueKind::kInt:
      return a.i == b.i;
    case ValueKind::kReal:
      return std::bit_cast<uint64_t>(a.d) == std::bit_cast<uint64_t>(b.d);
    case ValueKind::kString:
      return a.s == b.s;
    case ValueKind::kOid:
      return a.oid == b.oid;
    case ValueKind::kTuple: {
      if (a.fields.size() != b.fields.size()) return false;
      for (size_t i = 0; i < a.fields.size(); ++i) {
        if (a.fields[i].first != b.fields[i].first) return false;
        if (!BitEqualValues(a.fields[i].second, b.fields[i].second)) {
          return false;
        }
      }
      return true;
    }
    case ValueKind::kSet:
    case ValueKind::kMultiset:
    case ValueKind::kSequence: {
      if (a.elems.size() != b.elems.size()) return false;
      for (size_t i = 0; i < a.elems.size(); ++i) {
        if (!BitEqualValues(a.elems[i], b.elems[i])) return false;
      }
      return true;
    }
  }
  return false;
}

// Equality on child Values during a table probe. Children of both the
// candidate and the resident are live, so two interned children are equal
// iff they share the node; mixed/plain children fall back to a structural
// walk.
bool BitEqualValues(const Value& a, const Value& b) {
  if (a.SameRep(b)) return true;
  const auto& ra = ValueInternAccess::rep(a);
  const auto& rb = ValueInternAccess::rep(b);
  if (ra->interned && rb->interned) return false;
  return RepEquals(*ra, *rb);
}

// True when no real number occurs anywhere in the value. Children carry
// their own memoized exact bit, so this is O(width), not O(size).
bool RepExact(const Value::Rep& rep) {
  switch (rep.kind) {
    case ValueKind::kReal:
      return false;
    case ValueKind::kTuple:
      for (const auto& [label, child] : rep.fields) {
        (void)label;
        if (!ValueInternAccess::rep(child)->exact) return false;
      }
      return true;
    case ValueKind::kSet:
    case ValueKind::kMultiset:
    case ValueKind::kSequence:
      for (const Value& child : rep.elems) {
        if (!ValueInternAccess::rep(child)->exact) return false;
      }
      return true;
    default:
      return true;
  }
}

// One shard of the intern table: an open-addressed, linear-probe slot
// array sized to a power of two. A node-based map would pay a heap node
// plus a chain of dependent cache misses per operation — and on
// duplicate-free workloads *every* construction is a miss+insert and
// every death an erase — so the flat layout (one short scan, zero
// allocations amortized) is what keeps the interner's overhead small on
// workloads it cannot help.
struct InternShard {
  struct Slot {
    size_t hash = 0;
    const Value::Rep* rep = nullptr;  // nullptr marks an empty slot
    std::weak_ptr<const Value::Rep> weak;
  };

  std::shared_mutex mu;
  std::vector<Slot> slots;  // always a power of two (or empty)
  size_t live = 0;
  // Bumped on every mutation (insert, unlink, rehash). Lets a miss probe
  // done under the shared lock hand its landing slot to the insert under
  // the unique lock: if the version is unchanged across the lock switch,
  // the chain was not touched and the remembered empty slot is still the
  // right insertion point — one probe per miss instead of two.
  uint64_t version = 0;

  // Per-shard statistics. `hits` is atomic because the hit path holds
  // only the shared lock; the rest are plain fields mutated under the
  // unique lock and read under either lock — folding them into the
  // already-held lock instead of global atomics keeps the miss path to
  // zero extra contended cache lines. A node is always unlinked from the
  // shard that inserted it (same hash, same shard), so per-shard
  // `resident_bytes` never underflows.
  std::atomic<uint64_t> hits{0};
  uint64_t misses = 0;
  uint64_t released = 0;
  uint64_t resident_bytes = 0;

  size_t mask() const { return slots.size() - 1; }

  void Rehash(size_t capacity) {
    std::vector<Slot> old = std::move(slots);
    slots.clear();
    slots.resize(capacity);
    for (Slot& s : old) {
      if (s.rep == nullptr) continue;
      size_t i = s.hash & mask();
      while (slots[i].rep != nullptr) i = (i + 1) & mask();
      slots[i] = std::move(s);
    }
  }

  // Keeps the load factor at or below 3/4 for the next insert.
  void ReserveForInsert() {
    if (slots.empty()) {
      Rehash(256);
    } else if ((live + 1) * 4 > slots.size() * 3) {
      Rehash(slots.size() * 2);
    }
  }
};

constexpr size_t kInternShards = 16;

struct InternTable {
  InternShard shards[kInternShards];
  InternShard& shard_for(size_t hash) {
    // The low bits pick the slot inside the shard; fold in high bits for
    // the shard so the two choices decorrelate.
    return shards[(hash ^ (hash >> 17)) % kInternShards];
  }
};

// Deliberately leaked: destructors of static Values (the nil rep, the
// small-int cache) may run during process teardown and must find the
// table alive.
InternTable& Table() {
  static InternTable* table = new InternTable;
  return *table;
}

// Runs from ~Rep when the last Value referencing a canonical node dies:
// unlink the node from its shard by pointer identity. A stray Rep copy
// carrying the interned flag is harmless — its pointer is not in any
// chain, so the scan falls off the probe chain and returns.
void UnlinkInterned(const Value::Rep* rep) {
  InternShard& shard = Table().shard_for(rep->hash);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    if (shard.slots.empty()) return;
    const size_t mask = shard.mask();
    size_t i = rep->hash & mask;
    while (shard.slots[i].rep != rep) {
      if (shard.slots[i].rep == nullptr) return;  // not linked
      i = (i + 1) & mask;
    }
    // Backward-shift deletion keeps probe chains hole-free without
    // tombstones: pull every later entry whose ideal position lies at or
    // before the hole back into it.
    shard.slots[i] = InternShard::Slot{};
    for (size_t j = (i + 1) & mask; shard.slots[j].rep != nullptr;
         j = (j + 1) & mask) {
      const size_t ideal = shard.slots[j].hash & mask;
      const bool movable = (i <= j) ? (ideal <= i || ideal > j)
                                    : (ideal <= i && ideal > j);
      if (movable) {
        shard.slots[i] = std::move(shard.slots[j]);
        shard.slots[j] = InternShard::Slot{};
        i = j;
      }
    }
    --shard.live;
    ++shard.released;
    ++shard.version;
    shard.resident_bytes -= ShallowBytes(*rep);
    // Shed capacity once the table is mostly air again, so a transient
    // spike (one big fixpoint) does not pin slot memory forever.
    if (shard.slots.size() > 256 && shard.live * 8 < shard.slots.size()) {
      shard.Rehash(shard.slots.size() / 2);
    }
  }
}

// Returns the canonical node for `rep`'s structure, inserting it if
// absent. `rep.hash` must already be set. On a hit the candidate (and the
// buffers moved into it) is simply dropped — the saved allocation is what
// makes duplicate construction cheaper than the plain path.
std::shared_ptr<const Value::Rep> Canonicalize(Value::Rep&& rep) {
  InternShard& shard = Table().shard_for(rep.hash);
  uint64_t seen_version = 0;
  size_t landing = 0;
  bool have_landing = false;
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    seen_version = shard.version;
    if (!shard.slots.empty()) {
      const size_t mask = shard.mask();
      size_t i = rep.hash & mask;
      for (; shard.slots[i].rep != nullptr; i = (i + 1) & mask) {
        const InternShard::Slot& slot = shard.slots[i];
        if (slot.hash == rep.hash && RepEquals(*slot.rep, rep)) {
          if (auto sp = slot.weak.lock()) {
            shard.hits.fetch_add(1, std::memory_order_relaxed);
            return sp;
          }
          // Expired: the node's owner hit refcount zero and its
          // destructor is waiting to unlink it. Keep probing — a live
          // twin may sit later in the chain — else insert fresh below.
        }
      }
      landing = i;  // the empty slot ending this value's probe chain
      have_landing = true;
    }
  }
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  size_t i;
  if (have_landing && shard.version == seen_version &&
      (shard.live + 1) * 4 <= shard.slots.size() * 3) {
    // No mutation since the shared probe: the landing slot is still the
    // right insertion point and no rival inserted this value.
    i = landing;
  } else {
    shard.ReserveForInsert();
    const size_t mask = shard.mask();
    i = rep.hash & mask;
    for (; shard.slots[i].rep != nullptr; i = (i + 1) & mask) {
      const InternShard::Slot& slot = shard.slots[i];
      if (slot.hash == rep.hash && RepEquals(*slot.rep, rep)) {
        if (auto sp = slot.weak.lock()) {  // raced insert by another worker
          shard.hits.fetch_add(1, std::memory_order_relaxed);
          return sp;
        }
      }
    }
  }
  // The interned flag is set on the heap node only — the moved-from stack
  // candidate must not carry it into its own destructor.
  auto sp = std::make_shared<Value::Rep>(std::move(rep));
  sp->interned = true;
  shard.slots[i] = InternShard::Slot{sp->hash, sp.get(), sp};
  ++shard.live;
  ++shard.misses;
  ++shard.version;
  shard.resident_bytes += ShallowBytes(*sp);
  return sp;
}

std::shared_ptr<const Value::Rep> MakeRep(Value::Rep rep) {
  rep.exact = RepExact(rep);
  rep.hash = HashRep(rep);
  // Only exact (real-free) reps are interned — see the Rep::exact
  // comment. The exact bit is still computed on the plain path so that
  // composites built later under interning see correct child bits.
  if (rep.exact && g_intern_enabled.load(std::memory_order_relaxed)) {
    return Canonicalize(std::move(rep));
  }
  return std::make_shared<const Value::Rep>(std::move(rep));
}

// The shared nil rep: all default-constructed Values point here. Built
// through MakeRep, so with interning on it is also the table's canonical
// nil.
const std::shared_ptr<const Value::Rep>& NilRep() {
  static const std::shared_ptr<const Value::Rep> kNil =
      MakeRep(Value::Rep{});
  return kNil;
}

// Pinned canonical nodes for the small integers the workloads churn on
// (chain/graph node ids, counters). Skips both the allocation and the
// table probe; pinned for the process lifetime.
constexpr int64_t kSmallIntMin = -128;
constexpr int64_t kSmallIntMax = 2048;

// Pinned canonical true/false, same discipline as the small-int cache.
const std::shared_ptr<const Value::Rep>& BoolRep(bool b) {
  static const auto* cache = [] {
    auto* reps = new std::array<std::shared_ptr<const Value::Rep>, 2>;
    for (int v = 0; v < 2; ++v) {
      Value::Rep rep;
      rep.kind = ValueKind::kBool;
      rep.b = v != 0;
      rep.hash = HashRep(rep);
      (*reps)[v] = Canonicalize(std::move(rep));
    }
    return reps;
  }();
  return (*cache)[b ? 1 : 0];
}

const std::shared_ptr<const Value::Rep>& SmallIntRep(int64_t i) {
  static const auto* cache = [] {
    auto* reps = new std::vector<std::shared_ptr<const Value::Rep>>;
    reps->reserve(static_cast<size_t>(kSmallIntMax - kSmallIntMin));
    for (int64_t v = kSmallIntMin; v < kSmallIntMax; ++v) {
      Value::Rep rep;
      rep.kind = ValueKind::kInt;
      rep.i = v;
      rep.hash = HashRep(rep);
      // Through the table, so ints interned before the cache was first
      // touched resolve to the same node.
      reps->push_back(Canonicalize(std::move(rep)));
    }
    return reps;
  }();
  return (*cache)[static_cast<size_t>(i - kSmallIntMin)];
}

size_t HashRep(const Value::Rep& rep) {
  size_t seed = static_cast<size_t>(rep.kind) * 0x9e3779b97f4a7c15ULL;
  switch (rep.kind) {
    case ValueKind::kNil:
      break;
    case ValueKind::kBool:
      HashCombine(&seed, rep.b ? 1u : 2u);
      break;
    case ValueKind::kInt:
      HashCombine(&seed, std::hash<int64_t>()(rep.i));
      break;
    case ValueKind::kReal:
      HashCombine(&seed, std::hash<double>()(rep.d));
      break;
    case ValueKind::kString:
      HashCombine(&seed, std::hash<std::string>()(rep.s));
      break;
    case ValueKind::kOid:
      HashCombine(&seed, std::hash<uint64_t>()(rep.oid.id));
      break;
    case ValueKind::kTuple:
      for (const auto& [label, v] : rep.fields) {
        HashCombine(&seed, std::hash<std::string>()(label));
        HashCombine(&seed, v.Hash());
      }
      break;
    case ValueKind::kSet:
    case ValueKind::kMultiset:
    case ValueKind::kSequence:
      for (const Value& v : rep.elems) HashCombine(&seed, v.Hash());
      break;
  }
  return seed;
}

}  // namespace

Value::Rep::~Rep() {
  if (interned) UnlinkInterned(this);
}

Value::Value() : rep_(NilRep()) {}

Value Value::Nil() { return Value(); }

Value Value::Bool(bool b) {
  // Pinned canonical nodes, same rationale (and same on-only gating) as
  // the small-int cache in Value::Int.
  if (g_intern_enabled.load(std::memory_order_relaxed)) {
    return Value(BoolRep(b));
  }
  Rep rep;
  rep.kind = ValueKind::kBool;
  rep.b = b;
  return Value(MakeRep(std::move(rep)));
}

Value Value::Int(int64_t i) {
  // The pinned small-int cache skips the table probe on the integers the
  // workloads churn on (node ids, counters). Only consulted while
  // interning is on: the off path must stay exactly the old fresh-rep
  // path, it is the differential reference.
  if (i >= kSmallIntMin && i < kSmallIntMax &&
      g_intern_enabled.load(std::memory_order_relaxed)) {
    return Value(SmallIntRep(i));
  }
  Rep rep;
  rep.kind = ValueKind::kInt;
  rep.i = i;
  return Value(MakeRep(std::move(rep)));
}

Value Value::Real(double d) {
  Rep rep;
  rep.kind = ValueKind::kReal;
  rep.d = d;
  return Value(MakeRep(std::move(rep)));
}

Value Value::String(std::string s) {
  Rep rep;
  rep.kind = ValueKind::kString;
  rep.s = std::move(s);
  return Value(MakeRep(std::move(rep)));
}

Value Value::MakeOid(Oid oid) {
  Rep rep;
  rep.kind = ValueKind::kOid;
  rep.oid = oid;
  return Value(MakeRep(std::move(rep)));
}

Value Value::MakeTuple(std::vector<std::pair<std::string, Value>> fields) {
  Rep rep;
  rep.kind = ValueKind::kTuple;
  rep.fields = std::move(fields);
  return Value(MakeRep(std::move(rep)));
}

Value Value::MakeSet(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  Rep rep;
  rep.kind = ValueKind::kSet;
  rep.elems = std::move(elements);
  return Value(MakeRep(std::move(rep)));
}

Value Value::MakeMultiset(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end());
  Rep rep;
  rep.kind = ValueKind::kMultiset;
  rep.elems = std::move(elements);
  return Value(MakeRep(std::move(rep)));
}

Value Value::MakeSequence(std::vector<Value> elements) {
  Rep rep;
  rep.kind = ValueKind::kSequence;
  rep.elems = std::move(elements);
  return Value(MakeRep(std::move(rep)));
}

ValueKind Value::kind() const { return rep_->kind; }

bool Value::bool_value() const {
  assert(kind() == ValueKind::kBool);
  return rep_->b;
}

int64_t Value::int_value() const {
  assert(kind() == ValueKind::kInt);
  return rep_->i;
}

double Value::real_value() const {
  assert(kind() == ValueKind::kReal);
  return rep_->d;
}

const std::string& Value::string_value() const {
  assert(kind() == ValueKind::kString);
  return rep_->s;
}

Oid Value::oid_value() const {
  assert(kind() == ValueKind::kOid);
  return rep_->oid;
}

const std::vector<std::pair<std::string, Value>>& Value::tuple_fields()
    const {
  assert(kind() == ValueKind::kTuple);
  return rep_->fields;
}

Result<Value> Value::field(const std::string& label) const {
  if (kind() != ValueKind::kTuple) {
    return Status::TypeError(
        StrCat("field '", label, "' requested on ", ValueKindName(kind()),
               " value ", ToString()));
  }
  for (const auto& [l, v] : rep_->fields) {
    if (l == label) return v;
  }
  return Status::NotFound(
      StrCat("no field '", label, "' in tuple ", ToString()));
}

std::optional<Value> Value::FindField(const std::string& label) const {
  if (kind() != ValueKind::kTuple) return std::nullopt;
  for (const auto& [l, v] : rep_->fields) {
    if (l == label) return v;
  }
  return std::nullopt;
}

const Value* Value::FindFieldRef(const std::string& label) const {
  if (kind() != ValueKind::kTuple) return nullptr;
  for (const auto& f : rep_->fields) {
    if (f.first == label) return &f.second;
  }
  return nullptr;
}

size_t Value::size() const {
  if (kind() == ValueKind::kTuple) return rep_->fields.size();
  if (is_collection()) return rep_->elems.size();
  return 0;
}

const std::vector<Value>& Value::elements() const {
  assert(is_collection());
  return rep_->elems;
}

bool Value::Contains(const Value& element) const {
  return Count(element) > 0;
}

size_t Value::Count(const Value& element) const {
  if (!is_collection()) return 0;
  const auto& elems = rep_->elems;
  if (kind() == ValueKind::kSequence) {
    return static_cast<size_t>(
        std::count(elems.begin(), elems.end(), element));
  }
  // Sets and multisets are sorted.
  auto range = std::equal_range(elems.begin(), elems.end(), element);
  return static_cast<size_t>(range.second - range.first);
}

Result<Value> Value::Union(const Value& other) const {
  if (kind() != other.kind() || !is_collection()) {
    return Status::TypeError(
        StrCat("union of incompatible kinds: ", ValueKindName(kind()), ", ",
               ValueKindName(other.kind())));
  }
  std::vector<Value> merged = rep_->elems;
  merged.insert(merged.end(), other.rep_->elems.begin(),
                other.rep_->elems.end());
  switch (kind()) {
    case ValueKind::kSet: return MakeSet(std::move(merged));
    case ValueKind::kMultiset: return MakeMultiset(std::move(merged));
    case ValueKind::kSequence: return MakeSequence(std::move(merged));
    default: break;
  }
  return Status::TypeError("unreachable");
}

Result<Value> Value::Intersect(const Value& other) const {
  if (kind() != other.kind() ||
      (kind() != ValueKind::kSet && kind() != ValueKind::kMultiset)) {
    return Status::TypeError(
        StrCat("intersection of incompatible kinds: ",
               ValueKindName(kind()), ", ", ValueKindName(other.kind())));
  }
  std::vector<Value> out;
  std::set_intersection(rep_->elems.begin(), rep_->elems.end(),
                        other.rep_->elems.begin(), other.rep_->elems.end(),
                        std::back_inserter(out));
  return kind() == ValueKind::kSet ? MakeSet(std::move(out))
                                   : MakeMultiset(std::move(out));
}

Result<Value> Value::Difference(const Value& other) const {
  if (kind() != other.kind() ||
      (kind() != ValueKind::kSet && kind() != ValueKind::kMultiset)) {
    return Status::TypeError(
        StrCat("difference of incompatible kinds: ", ValueKindName(kind()),
               ", ", ValueKindName(other.kind())));
  }
  std::vector<Value> out;
  std::set_difference(rep_->elems.begin(), rep_->elems.end(),
                      other.rep_->elems.begin(), other.rep_->elems.end(),
                      std::back_inserter(out));
  return kind() == ValueKind::kSet ? MakeSet(std::move(out))
                                   : MakeMultiset(std::move(out));
}

Result<Value> Value::Insert(const Value& element) const {
  if (!is_collection()) {
    return Status::TypeError(
        StrCat("insert into non-collection ", ValueKindName(kind())));
  }
  std::vector<Value> elems = rep_->elems;
  elems.push_back(element);
  switch (kind()) {
    case ValueKind::kSet: return MakeSet(std::move(elems));
    case ValueKind::kMultiset: return MakeMultiset(std::move(elems));
    case ValueKind::kSequence: return MakeSequence(std::move(elems));
    default: break;
  }
  return Status::TypeError("unreachable");
}

Result<Value> Value::WithField(const std::string& label,
                               Value value) const {
  if (kind() != ValueKind::kTuple) {
    return Status::TypeError(
        StrCat("WithField on non-tuple ", ValueKindName(kind())));
  }
  auto fields = rep_->fields;
  for (auto& [l, v] : fields) {
    if (l == label) {
      v = std::move(value);
      return MakeTuple(std::move(fields));
    }
  }
  fields.emplace_back(label, std::move(value));
  return MakeTuple(std::move(fields));
}

int Value::Compare(const Value& other) const {
  if (rep_ == other.rep_) return 0;
  if (kind() != other.kind()) {
    return static_cast<int>(kind()) < static_cast<int>(other.kind()) ? -1
                                                                     : 1;
  }
  switch (kind()) {
    case ValueKind::kNil:
      return 0;
    case ValueKind::kBool:
      return (rep_->b == other.rep_->b) ? 0 : (rep_->b ? 1 : -1);
    case ValueKind::kInt:
      if (rep_->i != other.rep_->i) return rep_->i < other.rep_->i ? -1 : 1;
      return 0;
    case ValueKind::kReal:
      if (rep_->d != other.rep_->d) return rep_->d < other.rep_->d ? -1 : 1;
      return 0;
    case ValueKind::kString:
      return rep_->s.compare(other.rep_->s);
    case ValueKind::kOid:
      if (rep_->oid.id != other.rep_->oid.id) {
        return rep_->oid.id < other.rep_->oid.id ? -1 : 1;
      }
      return 0;
    case ValueKind::kTuple: {
      const auto& a = rep_->fields;
      const auto& b = other.rep_->fields;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int lc = a[i].first.compare(b[i].first);
        if (lc != 0) return lc;
        int vc = a[i].second.Compare(b[i].second);
        if (vc != 0) return vc;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
    case ValueKind::kSet:
    case ValueKind::kMultiset:
    case ValueKind::kSequence: {
      const auto& a = rep_->elems;
      const auto& b = other.rep_->elems;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

size_t Value::Hash() const { return rep_->hash; }

bool Value::is_interned() const { return rep_->interned; }

bool Value::EqualSlow(const Value& other) const {
  // Reps differ (operator== checked). Two live interned reps are
  // distinct structures by table uniqueness (interned implies exact, so
  // structural identity is semantic identity).
  if (rep_->interned && other.rep_->interned) return false;
  if (rep_->hash != other.rep_->hash) return false;
  return Compare(other) == 0;
}

size_t Value::ApproxBytes() const {
  size_t bytes = sizeof(Rep);
  bytes += rep_->s.capacity();
  for (const auto& [label, child] : rep_->fields) {
    bytes += label.capacity() + sizeof(std::pair<std::string, Value>);
    bytes += child.ApproxBytes();
  }
  for (const Value& child : rep_->elems) {
    bytes += sizeof(Value) + child.ApproxBytes();
  }
  return bytes;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNil:
      return "nil";
    case ValueKind::kBool:
      return rep_->b ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(rep_->i);
    case ValueKind::kReal: {
      std::string s = StrFormat("%g", rep_->d);
      return s;
    }
    case ValueKind::kString:
      return StrCat("\"", rep_->s, "\"");
    case ValueKind::kOid:
      return StrCat("#", rep_->oid.id);
    case ValueKind::kTuple:
      return StrCat(
          "(",
          JoinMapped(rep_->fields, ", ",
                     [](const std::pair<std::string, Value>& f) {
                       return StrCat(f.first, ": ", f.second.ToString());
                     }),
          ")");
    case ValueKind::kSet:
      return StrCat("{",
                    JoinMapped(rep_->elems, ", ",
                               [](const Value& v) { return v.ToString(); }),
                    "}");
    case ValueKind::kMultiset:
      return StrCat("[",
                    JoinMapped(rep_->elems, ", ",
                               [](const Value& v) { return v.ToString(); }),
                    "]");
    case ValueKind::kSequence:
      return StrCat("<",
                    JoinMapped(rep_->elems, ", ",
                               [](const Value& v) { return v.ToString(); }),
                    ">");
  }
  return "?";
}

// ---- ValueInterner facade (declared in algres/interner.h) --------------

bool ValueInterner::enabled() {
  return g_intern_enabled.load(std::memory_order_relaxed);
}

bool ValueInterner::set_enabled(bool on) {
  return g_intern_enabled.exchange(on, std::memory_order_relaxed);
}

ValueInternerStats ValueInterner::stats() {
  ValueInternerStats s;
  s.enabled = g_intern_enabled.load(std::memory_order_relaxed);
  for (InternShard& shard : Table().shards) {
    // The shared lock excludes the unique-lock writers of the plain
    // counters; each shard's snapshot is internally consistent.
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    s.hits += shard.hits.load(std::memory_order_relaxed);
    s.misses += shard.misses;
    s.released += shard.released;
    s.live_nodes += shard.live;
    s.resident_bytes += shard.resident_bytes;
  }
  return s;
}

std::string ValueInternerStats::ToString() const {
  return StrCat("interning=", enabled ? "on" : "off",
                " live_nodes=", live_nodes, " hits=", hits,
                " misses=", misses, " released=", released,
                " resident_bytes=", resident_bytes);
}

}  // namespace logres
