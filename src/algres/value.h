// The ALGRES complex-value system.
//
// ALGRES (the substrate the LOGRES prototype runs on, paper Section 1 and 5)
// is a main-memory engine over *complex objects*: values freely nested with
// the tuple (...), set {...}, multiset [...] and sequence <...> constructors
// of paper Definition 1, over the elementary types integer, string (plus
// booleans and reals, which Definition 1 footnote 2 explicitly allows), the
// nil object identifier, and object identifiers themselves.
//
// Values are immutable reference-counted DAGs: copying a Value is O(1), and
// structurally equal subtrees may be shared. A total order and a hash are
// defined over all values so that sets and relations can deduplicate
// efficiently (set semantics is load-bearing in LOGRES: associations are
// duplicate-free, classes are keyed by oid).
//
// When interning is enabled (the default — see algres/interner.h),
// construction routes through a process-wide hash-consing table: leaf
// strings are interned once, composite nodes are hash-consed bottom-up,
// and structurally equal values share one canonical node, so equality
// collapses to a pointer comparison (real-free values) and Compare()
// short-circuits on shared subtrees.

#ifndef LOGRES_ALGRES_VALUE_H_
#define LOGRES_ALGRES_VALUE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace logres {

/// \brief A system-generated object identifier (paper Definition 3).
///
/// Oids are managed by the system and never visible to users. Oid 0 is
/// reserved and never allocated; the *nil* oid — a legal value for class
/// references inside class types (Section 2.1) — is represented by a
/// distinct Value kind, not by a reserved Oid.
struct Oid {
  uint64_t id = 0;

  bool valid() const { return id != 0; }
  friend bool operator==(Oid a, Oid b) { return a.id == b.id; }
  friend bool operator!=(Oid a, Oid b) { return a.id != b.id; }
  friend bool operator<(Oid a, Oid b) { return a.id < b.id; }
};

/// \brief Allocates fresh oids. One generator per database.
class OidGenerator {
 public:
  Oid Next() { return Oid{++counter_}; }
  uint64_t issued() const { return counter_; }

  /// \brief Advances the generator so that \p issued oids count as
  /// consumed (no-op if it is already past). Used when restoring a dump
  /// and when replaying a journal, where rejected applications may have
  /// consumed oids that were never written down individually.
  void FastForward(uint64_t issued) {
    if (issued > counter_) counter_ = issued;
  }

 private:
  uint64_t counter_ = 0;
};

/// \brief The runtime kind of a Value.
enum class ValueKind {
  kNil = 0,   // the nil oid
  kBool,
  kInt,
  kReal,
  kString,
  kOid,       // reference to an object
  kTuple,     // labeled record (L1: v1, ..., Lk: vk)
  kSet,       // {v1, ..., vn}, duplicate-free
  kMultiset,  // [v1, ..., vn], elements with occurrence counts
  kSequence,  // <v1, ..., vn>, ordered, duplicates allowed
};

/// \brief Human-readable kind name ("tuple", "set", ...).
const char* ValueKindName(ValueKind kind);

class Value;

/// \brief One labeled field of a tuple value.
struct Field {
  std::string label;
  // Value is incomplete here; the vector of Fields lives behind a
  // shared_ptr in ValueRep so the indirection is resolved at use sites.
};

/// \brief An immutable complex value.
///
/// Cheap to copy (shared_ptr to an immutable representation). Scalars are
/// stored inline in the rep; composites hold vectors of child Values.
/// Values are totally ordered (kind-major, then content-lexicographic) and
/// hashable, which gives relations their set semantics.
class Value {
 public:
  /// Default-constructed value is nil.
  Value();

  // ---- Constructors ------------------------------------------------------
  static Value Nil();
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Real(double d);
  static Value String(std::string s);
  static Value MakeOid(Oid oid);

  /// \brief Builds a tuple with the given labeled fields (order preserved).
  static Value MakeTuple(
      std::vector<std::pair<std::string, Value>> fields);

  /// \brief Builds a set: elements are sorted and deduplicated.
  static Value MakeSet(std::vector<Value> elements);

  /// \brief Builds a multiset: elements are sorted; duplicates kept as
  /// occurrence counts (paper Definition 3's "occurrence integer number").
  static Value MakeMultiset(std::vector<Value> elements);

  /// \brief Builds a sequence: order preserved exactly as given.
  static Value MakeSequence(std::vector<Value> elements);

  /// \brief The empty set.
  static Value EmptySet() { return MakeSet({}); }

  // ---- Inspection --------------------------------------------------------
  ValueKind kind() const;
  bool is_nil() const { return kind() == ValueKind::kNil; }
  bool is_scalar() const {
    ValueKind k = kind();
    return k == ValueKind::kNil || k == ValueKind::kBool ||
           k == ValueKind::kInt || k == ValueKind::kReal ||
           k == ValueKind::kString || k == ValueKind::kOid;
  }
  bool is_collection() const {
    ValueKind k = kind();
    return k == ValueKind::kSet || k == ValueKind::kMultiset ||
           k == ValueKind::kSequence;
  }

  /// Preconditions: kind() must match the accessor.
  bool bool_value() const;
  int64_t int_value() const;
  double real_value() const;
  const std::string& string_value() const;
  Oid oid_value() const;

  /// \brief Tuple fields in declaration order. Precondition: tuple.
  const std::vector<std::pair<std::string, Value>>& tuple_fields() const;

  /// \brief Looks up a tuple field by label; error if absent or not a tuple.
  Result<Value> field(const std::string& label) const;

  /// \brief Field lookup returning nullopt on absence (no error allocation).
  std::optional<Value> FindField(const std::string& label) const;

  /// \brief Field lookup by reference: a pointer into this tuple's rep
  /// (valid while any Value shares the rep), nullptr on absence or when
  /// this is not a tuple. The copy-free probe path for hot index lookups.
  const Value* FindFieldRef(const std::string& label) const;

  /// \brief Number of fields (tuple) or elements (collections).
  size_t size() const;

  /// \brief Elements of a set or sequence, multiset expansion with
  /// duplicates repeated. Precondition: collection.
  const std::vector<Value>& elements() const;

  // ---- Algebra over collections ------------------------------------------
  /// \brief True if \p element occurs in this set/multiset/sequence.
  bool Contains(const Value& element) const;

  /// \brief Occurrence count of \p element (0/1 for sets).
  size_t Count(const Value& element) const;

  /// \brief Set/multiset union, sequence concatenation.
  /// Error if kinds differ or are not collections.
  Result<Value> Union(const Value& other) const;

  /// \brief Set/multiset intersection. Error for sequences.
  Result<Value> Intersect(const Value& other) const;

  /// \brief Set/multiset difference. Error for sequences.
  Result<Value> Difference(const Value& other) const;

  /// \brief Returns a copy with \p element inserted (appended, for
  /// sequences). Error for scalars/tuples.
  Result<Value> Insert(const Value& element) const;

  /// \brief Returns a tuple equal to this one with field \p label replaced
  /// (or added at the end if absent).
  Result<Value> WithField(const std::string& label, Value value) const;

  // ---- Ordering / hashing / printing --------------------------------------
  /// \brief Total order: kind-major, then content. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// \brief Structural hash, memoized in the immutable rep at construction
  /// — reading it never recomputes. Equal values hash equal, so a hash
  /// mismatch proves inequality (the operator== fast path below).
  size_t Hash() const;

  /// \brief True when both values share one physical rep (O(1)); shared
  /// reps are structurally equal, but equal values need not share reps.
  bool SameRep(const Value& other) const { return rep_ == other.rep_; }

  /// \brief True when this value holds a canonical node owned by the
  /// ValueInterner. Canonical nodes are unique per bit-structurally-
  /// distinct value: two live interned values are bit-structurally equal
  /// iff they share the rep.
  bool is_interned() const;

  /// \brief Approximate heap footprint in bytes: the rep, string payload,
  /// and children, recursively. Structurally shared subtrees are counted
  /// at every occurrence (an upper bound — the byte *budget* wants the
  /// logical size, not the deduplicated one). O(size of the value).
  size_t ApproxBytes() const;

  /// \brief Paper-style rendering: (l1: v1, ...), {..}, [..], <..>,
  /// strings quoted, oids as #n, nil as "nil".
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    // Canonical nodes fast-path: shared rep is equality; two *different*
    // interned real-free reps are provably unequal (EqualSlow).
    if (a.rep_ == b.rep_) return true;
    return a.EqualSlow(b);
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }
  friend bool operator<=(const Value& a, const Value& b) {
    return a.Compare(b) <= 0;
  }
  friend bool operator>(const Value& a, const Value& b) {
    return a.Compare(b) > 0;
  }
  friend bool operator>=(const Value& a, const Value& b) {
    return a.Compare(b) >= 0;
  }

  /// Opaque immutable representation (defined in value.cc; public only so
  /// that file-local helpers there can name it).
  struct Rep;

 private:
  // File-local interner machinery in value.cc reads reps through this.
  friend struct ValueInternAccess;

  explicit Value(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  // Distinct-rep equality: interned-pointer fast path, then hash, then
  // Compare. Out of line because it reads Rep fields.
  bool EqualSlow(const Value& other) const;

  std::shared_ptr<const Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

/// \brief std::hash adapter so Values can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace logres

#endif  // LOGRES_ALGRES_VALUE_H_
