// The hash-consed value interner: one canonical node per structurally-
// distinct value.
//
// Set semantics makes the engines compare, hash, and deduplicate the same
// complex values millions of times per fixpoint. The interner applies the
// maximal-sharing discipline of the Nix evaluator (EvalState::normalForms):
// every Value constructed while interning is enabled routes through a
// process-wide table that owns exactly one refcounted node per
// bit-structurally-distinct value, so
//
//   * constructing a value that already exists allocates nothing — the
//     canonical node is returned (a table "hit");
//   * structural equality between canonical real-free values collapses to
//     a pointer comparison (see Value::operator=='s fast path);
//   * Compare() short-circuits on shared subtrees at every level, because
//     equal subtrees *are* the same node.
//
// Only *exact* values — those containing no real number anywhere — are
// interned. For exact values structural identity coincides with the
// total order's equivalence, so sharing a node can never change what a
// program computes or prints. Reals break the coincidence (0.0 and -0.0
// compare equal but print "0" and "-0"; NaNs compare unequal to
// themselves), so real-containing values always take the plain
// allocation path. This is what keeps dumps byte-identical with
// interning on or off.
//
// The table is sharded and shared_mutex-protected so the parallel
// fixpoint's workers can intern concurrently; each shard is an
// open-addressed linear-probe array with backward-shift deletion. Nodes
// are refcounted by the Values holding them: when the last reference
// dies, Rep's destructor unlinks the node from its shard and the memory
// returns — the table holds weak references only (plus pinned
// small-integer and boolean caches). The table itself is deliberately
// leaked so destructors of static Values stay safe at process exit.
//
// Interning is controlled by a process-global flag (default on). The
// engines scope it per evaluation from EvalOptions::intern_values, with
// the off path retained as the differential reference — exactly like
// EvalOptions::use_snapshot_steps. Disabling never invalidates existing
// canonical nodes; interned and plain values mix freely and compare
// correctly (the fast paths only fire when both sides are canonical).

#ifndef LOGRES_ALGRES_INTERNER_H_
#define LOGRES_ALGRES_INTERNER_H_

#include <cstdint>
#include <string>

namespace logres {

/// \brief Observability counters for the interner (shell `value stats`,
/// EvalStats, the byte governor). Summed across shards under shared
/// locks — cheap, but not a single atomic snapshot.
struct ValueInternerStats {
  bool enabled = false;
  /// Canonical nodes currently alive (interned constructions minus
  /// released nodes; includes the pinned small-integer/bool caches).
  uint64_t live_nodes = 0;
  /// Constructions that found an existing canonical node.
  uint64_t hits = 0;
  /// Constructions that inserted a new canonical node.
  uint64_t misses = 0;
  /// Canonical nodes whose last reference died (memory returned).
  uint64_t released = 0;
  /// Approximate bytes resident in live canonical nodes (shallow: each
  /// node's own payload, not its children — children are nodes too, so
  /// the sum is the deduplicated heap footprint).
  uint64_t resident_bytes = 0;

  std::string ToString() const;
};

/// \brief Static facade over the process-wide intern table (the table
/// lives in value.cc next to Value::Rep, which it stores).
class ValueInterner {
 public:
  /// \brief Whether Value construction currently routes through the
  /// interner.
  static bool enabled();

  /// \brief Flips the process-global interning flag; returns the previous
  /// value. Existing values are unaffected either way.
  static bool set_enabled(bool on);

  static ValueInternerStats stats();
};

/// \brief RAII interning mode for one evaluation: saves the global flag,
/// sets it, restores on destruction. The engines apply this from
/// EvalOptions::intern_values at every entry point.
class ScopedInternValues {
 public:
  explicit ScopedInternValues(bool on)
      : saved_(ValueInterner::set_enabled(on)) {}
  ~ScopedInternValues() { ValueInterner::set_enabled(saved_); }
  ScopedInternValues(const ScopedInternValues&) = delete;
  ScopedInternValues& operator=(const ScopedInternValues&) = delete;

 private:
  bool saved_;
};

}  // namespace logres

#endif  // LOGRES_ALGRES_INTERNER_H_
