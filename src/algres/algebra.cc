#include "algres/algebra.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace logres::algres {

namespace {

// Below this many probe rows a parallel join is all coordination and no
// work — the serial path runs instead even when a pool is supplied.
constexpr size_t kMinProbeRowsPerChunk = 16;

// Contiguous [begin, end) splits of `n` rows, at most `pool`-threads * 2
// chunks, each at least kMinProbeRowsPerChunk rows. Empty when `n` is too
// small to be worth fanning out (callers fall back to the serial path).
std::vector<std::pair<size_t, size_t>> ProbeChunks(size_t n,
                                                   const ThreadPool& pool) {
  if (n < 2 * kMinProbeRowsPerChunk) return {};
  size_t chunks =
      std::min(pool.num_threads() * 2, n / kMinProbeRowsPerChunk);
  if (chunks < 2) return {};
  std::vector<std::pair<size_t, size_t>> out;
  out.reserve(chunks);
  size_t base = n / chunks;
  size_t extra = n % chunks;
  size_t lo = 0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t hi = lo + base + (c < extra ? 1 : 0);
    out.emplace_back(lo, hi);
    lo = hi;
  }
  return out;
}

}  // namespace

Result<Relation> Select(const Relation& input, const RowPredicate& pred) {
  Relation out(input.columns());
  for (const Row& row : input) {
    LOGRES_ASSIGN_OR_RETURN(bool keep, pred(row));
    if (keep) {
      LOGRES_RETURN_NOT_OK(out.Insert(row).status());
    }
  }
  return out;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& columns) {
  std::vector<size_t> idx;
  idx.reserve(columns.size());
  for (const std::string& c : columns) {
    LOGRES_ASSIGN_OR_RETURN(size_t i, input.ColumnIndex(c));
    idx.push_back(i);
  }
  Relation out(columns);
  for (const Row& row : input) {
    Row projected;
    projected.reserve(idx.size());
    for (size_t i : idx) projected.push_back(row[i]);
    LOGRES_RETURN_NOT_OK(out.Insert(std::move(projected)).status());
  }
  return out;
}

Result<Relation> Rename(
    const Relation& input,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  std::vector<std::string> columns = input.columns();
  for (const auto& [from, to] : renames) {
    LOGRES_ASSIGN_OR_RETURN(size_t i, input.ColumnIndex(from));
    columns[i] = to;
  }
  std::set<std::string> seen;
  for (const auto& c : columns) {
    if (!seen.insert(c).second) {
      return Status::InvalidArgument(
          StrCat("rename produces duplicate column '", c, "'"));
    }
  }
  Relation out(std::move(columns));
  for (const Row& row : input) {
    LOGRES_RETURN_NOT_OK(out.Insert(row).status());
  }
  return out;
}

Result<Relation> Product(const Relation& left, const Relation& right) {
  std::vector<std::string> columns = left.columns();
  for (const std::string& c : right.columns()) {
    if (left.HasColumn(c)) {
      return Status::InvalidArgument(
          StrCat("product operands share column '", c, "'"));
    }
    columns.push_back(c);
  }
  Relation out(std::move(columns));
  for (const Row& l : left) {
    for (const Row& r : right) {
      Row row = l;
      row.insert(row.end(), r.begin(), r.end());
      LOGRES_RETURN_NOT_OK(out.Insert(std::move(row)).status());
    }
  }
  return out;
}

Result<Relation> NaturalJoin(const Relation& left, const Relation& right,
                             ThreadPool* pool) {
  std::vector<std::pair<std::string, std::string>> on;
  for (const std::string& c : left.columns()) {
    if (right.HasColumn(c)) on.emplace_back(c, c);
  }
  if (on.empty()) {
    // Disjoint headers: natural join degenerates to the product.
    return Product(left, right);
  }
  return EquiJoin(left, right, on, pool);
}

Result<Relation> EquiJoin(
    const Relation& left, const Relation& right,
    const std::vector<std::pair<std::string, std::string>>& on,
    ThreadPool* pool) {
  std::vector<size_t> lkey, rkey;
  for (const auto& [lc, rc] : on) {
    LOGRES_ASSIGN_OR_RETURN(size_t li, left.ColumnIndex(lc));
    LOGRES_ASSIGN_OR_RETURN(size_t ri, right.ColumnIndex(rc));
    lkey.push_back(li);
    rkey.push_back(ri);
  }
  // Result columns: all of left + right minus right's join columns.
  std::set<size_t> dropped(rkey.begin(), rkey.end());
  std::vector<std::string> columns = left.columns();
  std::vector<size_t> rkeep;
  for (size_t i = 0; i < right.columns().size(); ++i) {
    if (dropped.count(i)) continue;
    const std::string& c = right.columns()[i];
    if (left.HasColumn(c)) {
      return Status::InvalidArgument(
          StrCat("join operands share non-join column '", c, "'"));
    }
    columns.push_back(c);
    rkeep.push_back(i);
  }
  // Build/probe hash join: the right side's secondary index on the join
  // key (cached on the relation, so repeated joins against an unchanged
  // build side — e.g. the edge relation across closure rounds — reuse it).
  // The IndexOn call below is the only lazy mutation; it runs before any
  // worker starts, so the parallel probes only ever read.
  const RelationIndex& index = right.IndexOn(rkey);
  Relation out(std::move(columns));
  const std::vector<Row>& lrows = left.rows();
  if (pool != nullptr) {
    auto ranges = ProbeChunks(lrows.size(), *pool);
    if (!ranges.empty()) {
      std::vector<std::vector<Row>> produced(ranges.size());
      std::vector<ThreadPool::Task> tasks;
      tasks.reserve(ranges.size());
      for (size_t c = 0; c < ranges.size(); ++c) {
        tasks.push_back([&, c]() -> Status {
          Row key;
          for (size_t r = ranges[c].first; r < ranges[c].second; ++r) {
            const Row& l = lrows[r];
            key.clear();
            for (size_t i : lkey) key.push_back(l[i]);
            right.ForEachMatch(index, key, [&](const Row& rr) {
              Row row = l;
              for (size_t i : rkeep) row.push_back(rr[i]);
              produced[c].push_back(std::move(row));
            });
          }
          return Status::OK();
        });
      }
      LOGRES_RETURN_NOT_OK(pool->Run(std::move(tasks)));
      // Chunk-order insertion == serial insertion order, duplicates and
      // all, so downstream order-sensitive consumers see no difference.
      for (std::vector<Row>& rows : produced) {
        for (Row& row : rows) {
          LOGRES_RETURN_NOT_OK(out.Insert(std::move(row)).status());
        }
      }
      return out;
    }
  }
  Status status = Status::OK();
  Row key;
  for (const Row& l : lrows) {
    key.clear();
    for (size_t i : lkey) key.push_back(l[i]);
    right.ForEachMatch(index, key, [&](const Row& r) {
      if (!status.ok()) return;
      Row row = l;
      for (size_t i : rkeep) row.push_back(r[i]);
      status = out.Insert(std::move(row)).status();
    });
    LOGRES_RETURN_NOT_OK(status);
  }
  return out;
}

Result<Relation> ThetaJoin(const Relation& left, const Relation& right,
                           const RowPredicate& theta) {
  LOGRES_ASSIGN_OR_RETURN(Relation product, Product(left, right));
  return Select(product, theta);
}

namespace {

// Shared machinery for semi/anti-joins: indexes the right side on the
// shared columns and reports, per left row, whether a partner exists.
Result<Relation> FilterByPartner(const Relation& left, const Relation& right,
                                 bool keep_matched, ThreadPool* pool) {
  std::vector<size_t> lkey, rkey;
  for (size_t li = 0; li < left.columns().size(); ++li) {
    const std::string& c = left.columns()[li];
    if (right.HasColumn(c)) {
      LOGRES_ASSIGN_OR_RETURN(size_t ri, right.ColumnIndex(c));
      lkey.push_back(li);
      rkey.push_back(ri);
    }
  }
  if (lkey.empty()) {
    // No shared columns: every left row is matched iff right is nonempty.
    if (right.empty() == keep_matched) return Relation(left.columns());
    return left;
  }
  const RelationIndex& index = right.IndexOn(rkey);
  Relation out(left.columns());
  const std::vector<Row>& lrows = left.rows();
  if (pool != nullptr) {
    auto ranges = ProbeChunks(lrows.size(), *pool);
    if (!ranges.empty()) {
      // Workers only compute the per-row matched flags; the surviving rows
      // are inserted afterwards in row order (== serial order).
      std::vector<char> matched(lrows.size(), 0);
      std::vector<ThreadPool::Task> tasks;
      tasks.reserve(ranges.size());
      for (const auto& range : ranges) {
        tasks.push_back([&, range]() -> Status {
          Row key;
          for (size_t r = range.first; r < range.second; ++r) {
            key.clear();
            for (size_t i : lkey) key.push_back(lrows[r][i]);
            bool hit = false;
            right.ForEachMatch(index, key, [&](const Row&) { hit = true; });
            matched[r] = hit ? 1 : 0;
          }
          return Status::OK();
        });
      }
      LOGRES_RETURN_NOT_OK(pool->Run(std::move(tasks)));
      for (size_t r = 0; r < lrows.size(); ++r) {
        if ((matched[r] != 0) == keep_matched) {
          LOGRES_RETURN_NOT_OK(out.Insert(lrows[r]).status());
        }
      }
      return out;
    }
  }
  Row key;
  for (const Row& l : lrows) {
    key.clear();
    for (size_t i : lkey) key.push_back(l[i]);
    bool matched = false;
    right.ForEachMatch(index, key, [&](const Row&) { matched = true; });
    if (matched == keep_matched) {
      LOGRES_RETURN_NOT_OK(out.Insert(l).status());
    }
  }
  return out;
}

}  // namespace

Result<Relation> SemiJoin(const Relation& left, const Relation& right,
                          ThreadPool* pool) {
  return FilterByPartner(left, right, /*keep_matched=*/true, pool);
}

Result<Relation> AntiJoin(const Relation& left, const Relation& right,
                          ThreadPool* pool) {
  return FilterByPartner(left, right, /*keep_matched=*/false, pool);
}

Result<Relation> Divide(const Relation& dividend, const Relation& divisor) {
  std::vector<std::string> quotient_columns;
  for (const std::string& c : dividend.columns()) {
    if (!divisor.HasColumn(c)) quotient_columns.push_back(c);
  }
  if (quotient_columns.size() == dividend.columns().size()) {
    return Status::InvalidArgument(
        "division requires the divisor's columns to occur in the dividend");
  }
  if (quotient_columns.empty()) {
    return Status::InvalidArgument(
        "division requires the dividend to have columns beyond the "
        "divisor's");
  }
  for (const std::string& c : divisor.columns()) {
    if (!dividend.HasColumn(c)) {
      return Status::InvalidArgument(
          StrCat("divisor column '", c, "' missing from the dividend"));
    }
  }
  // Classical formulation: candidates − projections of missing pairs.
  LOGRES_ASSIGN_OR_RETURN(Relation candidates,
                          Project(dividend, quotient_columns));
  LOGRES_ASSIGN_OR_RETURN(Relation all_pairs,
                          Product(candidates, divisor));
  // Align all_pairs' column order with the dividend before subtracting.
  LOGRES_ASSIGN_OR_RETURN(Relation dividend_aligned,
                          Project(dividend, all_pairs.columns()));
  LOGRES_ASSIGN_OR_RETURN(Relation missing,
                          Difference(all_pairs, dividend_aligned));
  LOGRES_ASSIGN_OR_RETURN(Relation disqualified,
                          Project(missing, quotient_columns));
  return Difference(candidates, disqualified);
}

namespace {

Status CheckSameHeader(const Relation& left, const Relation& right,
                       const char* op) {
  if (left.columns() != right.columns()) {
    return Status::InvalidArgument(
        StrCat(op, " operands have different headers: [",
               Join(left.columns(), ", "), "] vs [",
               Join(right.columns(), ", "), "]"));
  }
  return Status::OK();
}

}  // namespace

Result<Relation> Union(const Relation& left, const Relation& right) {
  LOGRES_RETURN_NOT_OK(CheckSameHeader(left, right, "union"));
  Relation out = left;
  for (const Row& row : right) {
    LOGRES_RETURN_NOT_OK(out.Insert(row).status());
  }
  return out;
}

Result<Relation> Intersect(const Relation& left, const Relation& right) {
  LOGRES_RETURN_NOT_OK(CheckSameHeader(left, right, "intersect"));
  Relation out(left.columns());
  for (const Row& row : left) {
    if (right.Contains(row)) {
      LOGRES_RETURN_NOT_OK(out.Insert(row).status());
    }
  }
  return out;
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  LOGRES_RETURN_NOT_OK(CheckSameHeader(left, right, "difference"));
  Relation out(left.columns());
  for (const Row& row : left) {
    if (!right.Contains(row)) {
      LOGRES_RETURN_NOT_OK(out.Insert(row).status());
    }
  }
  return out;
}

Result<Relation> Nest(const Relation& input,
                      const std::vector<std::string>& nested,
                      const std::string& as) {
  if (nested.empty()) {
    return Status::InvalidArgument("nest requires at least one column");
  }
  std::vector<size_t> nidx;
  for (const std::string& c : nested) {
    LOGRES_ASSIGN_OR_RETURN(size_t i, input.ColumnIndex(c));
    nidx.push_back(i);
  }
  std::set<size_t> nset(nidx.begin(), nidx.end());
  std::vector<std::string> group_cols;
  std::vector<size_t> gidx;
  for (size_t i = 0; i < input.columns().size(); ++i) {
    if (!nset.count(i)) {
      group_cols.push_back(input.columns()[i]);
      gidx.push_back(i);
    }
  }
  // Group rows; each group accumulates a set of nested payloads. A payload
  // is the bare cell for a single nested column, a labeled tuple otherwise.
  std::map<Row, std::vector<Value>> groups;
  for (const Row& row : input) {
    Row key;
    key.reserve(gidx.size());
    for (size_t i : gidx) key.push_back(row[i]);
    Value payload;
    if (nidx.size() == 1) {
      payload = row[nidx[0]];
    } else {
      std::vector<std::pair<std::string, Value>> fields;
      for (size_t k = 0; k < nidx.size(); ++k) {
        fields.emplace_back(nested[k], row[nidx[k]]);
      }
      payload = Value::MakeTuple(std::move(fields));
    }
    groups[std::move(key)].push_back(std::move(payload));
  }
  std::vector<std::string> out_cols = group_cols;
  out_cols.push_back(as);
  Relation out(std::move(out_cols));
  for (auto& [key, payloads] : groups) {
    Row row = key;
    row.push_back(Value::MakeSet(std::move(payloads)));
    LOGRES_RETURN_NOT_OK(out.Insert(std::move(row)).status());
  }
  return out;
}

Result<Relation> Unnest(const Relation& input, const std::string& column,
                        bool spread_tuple) {
  LOGRES_ASSIGN_OR_RETURN(size_t ci, input.ColumnIndex(column));

  // Determine the output header. With spread_tuple we need a witness
  // element to learn the tuple labels; an empty input column yields an
  // empty relation with the collection column simply dropped.
  std::vector<std::string> out_cols;
  bool spread_resolved = false;
  std::vector<std::string> spread_labels;
  for (const Row& row : input) {
    const Value& cell = row[ci];
    if (!cell.is_collection()) {
      return Status::TypeError(
          StrCat("unnest column '", column, "' holds non-collection ",
                 cell.ToString()));
    }
    if (spread_tuple && !cell.elements().empty()) {
      const Value& first = cell.elements().front();
      if (first.kind() != ValueKind::kTuple) {
        return Status::TypeError(
            StrCat("unnest with spread requires tuple elements, got ",
                   ValueKindName(first.kind())));
      }
      for (const auto& [label, v] : first.tuple_fields()) {
        (void)v;
        spread_labels.push_back(label);
      }
      spread_resolved = true;
      break;
    }
  }
  for (size_t i = 0; i < input.columns().size(); ++i) {
    if (i != ci) out_cols.push_back(input.columns()[i]);
  }
  if (spread_tuple && spread_resolved) {
    for (const std::string& l : spread_labels) out_cols.push_back(l);
  } else if (!spread_tuple) {
    out_cols.push_back(column);
  }
  Relation out(out_cols);
  for (const Row& row : input) {
    const Value& cell = row[ci];
    for (const Value& element : cell.elements()) {
      Row new_row;
      new_row.reserve(out_cols.size());
      for (size_t i = 0; i < row.size(); ++i) {
        if (i != ci) new_row.push_back(row[i]);
      }
      if (spread_tuple) {
        if (element.kind() != ValueKind::kTuple) {
          return Status::TypeError(
              StrCat("unnest with spread met non-tuple element ",
                     element.ToString()));
        }
        for (const std::string& label : spread_labels) {
          LOGRES_ASSIGN_OR_RETURN(Value v, element.field(label));
          new_row.push_back(std::move(v));
        }
      } else {
        new_row.push_back(element);
      }
      LOGRES_RETURN_NOT_OK(out.Insert(std::move(new_row)).status());
    }
  }
  return out;
}

Result<Relation> Extend(const Relation& input, const std::string& name,
                        const RowFunction& fn) {
  if (input.HasColumn(name)) {
    return Status::AlreadyExists(
        StrCat("extend column '", name, "' already exists"));
  }
  std::vector<std::string> columns = input.columns();
  columns.push_back(name);
  Relation out(std::move(columns));
  for (const Row& row : input) {
    LOGRES_ASSIGN_OR_RETURN(Value v, fn(row));
    Row new_row = row;
    new_row.push_back(std::move(v));
    LOGRES_RETURN_NOT_OK(out.Insert(std::move(new_row)).status());
  }
  return out;
}

Result<Relation> Aggregate(const Relation& input,
                           const std::vector<std::string>& group_by,
                           AggregateKind kind, const std::string& target,
                           const std::string& as) {
  std::vector<size_t> gidx;
  for (const std::string& c : group_by) {
    LOGRES_ASSIGN_OR_RETURN(size_t i, input.ColumnIndex(c));
    gidx.push_back(i);
  }
  size_t tidx = 0;
  if (kind != AggregateKind::kCount) {
    LOGRES_ASSIGN_OR_RETURN(tidx, input.ColumnIndex(target));
  }
  struct Acc {
    int64_t count = 0;
    double sum = 0;
    bool all_int = true;
    int64_t isum = 0;
    Value min, max;
    bool has_extreme = false;
  };
  std::map<Row, Acc> groups;
  for (const Row& row : input) {
    Row key;
    key.reserve(gidx.size());
    for (size_t i : gidx) key.push_back(row[i]);
    Acc& acc = groups[std::move(key)];
    acc.count++;
    if (kind == AggregateKind::kCount) continue;
    const Value& v = row[tidx];
    if (kind == AggregateKind::kSum || kind == AggregateKind::kAvg) {
      if (v.kind() == ValueKind::kInt) {
        acc.isum += v.int_value();
        acc.sum += static_cast<double>(v.int_value());
      } else if (v.kind() == ValueKind::kReal) {
        acc.all_int = false;
        acc.sum += v.real_value();
      } else {
        return Status::TypeError(
            StrCat("aggregate over non-numeric value ", v.ToString()));
      }
    }
    if (!acc.has_extreme) {
      acc.min = v;
      acc.max = v;
      acc.has_extreme = true;
    } else {
      if (v < acc.min) acc.min = v;
      if (acc.max < v) acc.max = v;
    }
  }
  std::vector<std::string> columns = group_by;
  columns.push_back(as);
  Relation out(std::move(columns));
  for (const auto& [key, acc] : groups) {
    Value result;
    switch (kind) {
      case AggregateKind::kCount:
        result = Value::Int(acc.count);
        break;
      case AggregateKind::kSum:
        result = acc.all_int ? Value::Int(acc.isum) : Value::Real(acc.sum);
        break;
      case AggregateKind::kAvg:
        result = Value::Real(acc.sum / static_cast<double>(acc.count));
        break;
      case AggregateKind::kMin:
        result = acc.min;
        break;
      case AggregateKind::kMax:
        result = acc.max;
        break;
    }
    Row row = key;
    row.push_back(std::move(result));
    LOGRES_RETURN_NOT_OK(out.Insert(std::move(row)).status());
  }
  return out;
}

Result<Relation> Closure(const Relation& seed, const ClosureStep& step,
                         const ClosureOptions& options) {
  Relation current = seed;
  for (size_t i = 0; options.max_steps == 0 || i < options.max_steps; ++i) {
    LOGRES_ASSIGN_OR_RETURN(Relation produced, step(current));
    Relation next;
    if (options.semantics == ClosureSemantics::kInflationary) {
      LOGRES_ASSIGN_OR_RETURN(next, Union(current, produced));
    } else {
      next = std::move(produced);
    }
    if (next == current) return current;
    current = std::move(next);
  }
  return Status::Divergence(
      StrCat("closure did not converge within ", options.max_steps,
             " steps"));
}

Result<Relation> SemiNaiveClosure(const Relation& seed,
                                  const ClosureStep& delta_step,
                                  const ClosureOptions& options) {
  Relation total = seed;
  Relation delta = seed;
  for (size_t i = 0; options.max_steps == 0 || i < options.max_steps; ++i) {
    if (delta.empty()) return total;
    LOGRES_ASSIGN_OR_RETURN(Relation produced, delta_step(delta));
    Relation next_delta(total.columns());
    for (const Row& row : produced) {
      if (!total.Contains(row)) {
        LOGRES_RETURN_NOT_OK(next_delta.Insert(row).status());
      }
    }
    // Grow the accumulator in place — a Union would copy it every round.
    for (const Row& row : next_delta) {
      LOGRES_RETURN_NOT_OK(total.Insert(row).status());
    }
    delta = std::move(next_delta);
  }
  return Status::Divergence(
      StrCat("semi-naive closure did not converge within ",
             options.max_steps, " steps"));
}

}  // namespace logres::algres
