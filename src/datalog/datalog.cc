#include "datalog/datalog.h"

#include <algorithm>
#include <queue>

#include "util/failpoint.h"
#include "util/string_util.h"

namespace logres::datalog {

std::string Constant::ToString() const {
  if (is_int()) return std::to_string(int_value());
  return sym_value();
}

std::string Term::ToString() const {
  if (is_var()) return var_name();
  return constant().ToString();
}

std::string Literal::ToString() const {
  std::string out = negated ? "not " : "";
  out += predicate;
  out += "(";
  out += JoinMapped(terms, ", ", [](const Term& t) { return t.ToString(); });
  out += ")";
  return out;
}

std::string Rule::ToString() const {
  return StrCat(head.ToString(), " :- ",
                JoinMapped(body, ", ",
                           [](const Literal& l) { return l.ToString(); }),
                ".");
}

Status Program::AddRule(Rule rule) {
  if (rule.head.negated) {
    return Status::InvalidArgument(
        StrCat("flat Datalog forbids negated heads: ", rule.ToString()));
  }
  // Safety: every head variable and every variable in a negated body
  // literal must occur in some positive body literal.
  std::set<std::string> positive_vars;
  for (const Literal& lit : rule.body) {
    if (lit.negated) continue;
    for (const Term& t : lit.terms) {
      if (t.is_var()) positive_vars.insert(t.var_name());
    }
  }
  auto check = [&](const Literal& lit, const char* where) -> Status {
    for (const Term& t : lit.terms) {
      if (t.is_var() && !positive_vars.count(t.var_name())) {
        return Status::UnsafeRule(
            StrCat("variable ", t.var_name(), " in ", where,
                   " not bound by a positive body literal: ",
                   rule.ToString()));
      }
    }
    return Status::OK();
  };
  LOGRES_RETURN_NOT_OK(check(rule.head, "head"));
  for (const Literal& lit : rule.body) {
    if (lit.negated) LOGRES_RETURN_NOT_OK(check(lit, "negated literal"));
  }
  // Arity consistency.
  auto note_arity = [&](const Literal& lit) -> Status {
    auto [it, inserted] = arity_.emplace(lit.predicate, lit.terms.size());
    if (!inserted && it->second != lit.terms.size()) {
      return Status::InvalidArgument(
          StrCat("predicate ", lit.predicate, " used with arities ",
                 it->second, " and ", lit.terms.size()));
    }
    return Status::OK();
  };
  LOGRES_RETURN_NOT_OK(note_arity(rule.head));
  for (const Literal& lit : rule.body) LOGRES_RETURN_NOT_OK(note_arity(lit));
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Status Program::AddFact(const std::string& predicate, Fact fact) {
  auto [it, inserted] = arity_.emplace(predicate, fact.size());
  if (!inserted && it->second != fact.size()) {
    return Status::InvalidArgument(
        StrCat("predicate ", predicate, " used with arities ", it->second,
               " and ", fact.size()));
  }
  edb_[predicate].insert(std::move(fact));
  return Status::OK();
}

Result<std::map<std::string, int>> Stratify(const Program& program) {
  // Build the dependency graph: head depends on each body predicate,
  // marked "negative" when the body literal is negated.
  struct Edge {
    std::string from;
    bool negative;
  };
  std::map<std::string, std::vector<Edge>> deps;  // head -> body deps
  std::set<std::string> preds;
  for (const auto& [p, facts] : program.edb()) {
    (void)facts;
    preds.insert(p);
  }
  for (const Rule& rule : program.rules()) {
    preds.insert(rule.head.predicate);
    for (const Literal& lit : rule.body) {
      preds.insert(lit.predicate);
      deps[rule.head.predicate].push_back(Edge{lit.predicate, lit.negated});
    }
  }
  std::map<std::string, int> stratum;
  for (const auto& p : preds) stratum[p] = 0;
  // Bellman-Ford style relaxation: stratum(head) >= stratum(body),
  // strictly greater across negative edges. A stratum exceeding the number
  // of predicates implies a cycle through negation.
  const int limit = static_cast<int>(preds.size()) + 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [head, edges] : deps) {
      for (const Edge& e : edges) {
        int required = stratum[e.from] + (e.negative ? 1 : 0);
        if (stratum[head] < required) {
          stratum[head] = required;
          if (stratum[head] > limit) {
            return Status::Inconsistent(
                StrCat("program is not stratified: cycle through negation "
                       "involving predicate ",
                       head));
          }
          changed = true;
        }
      }
    }
  }
  return stratum;
}

namespace {

using Bindings = std::map<std::string, Constant>;

// Attempts to extend `bindings` so that `lit` (positive) matches `fact`.
bool Match(const Literal& lit, const Fact& fact, Bindings* bindings) {
  if (lit.terms.size() != fact.size()) return false;
  std::vector<std::pair<std::string, Constant>> added;
  for (size_t i = 0; i < lit.terms.size(); ++i) {
    const Term& t = lit.terms[i];
    if (t.is_var()) {
      auto it = bindings->find(t.var_name());
      if (it == bindings->end()) {
        bindings->emplace(t.var_name(), fact[i]);
        added.emplace_back(t.var_name(), fact[i]);
      } else if (!(it->second == fact[i])) {
        for (auto& [name, c] : added) {
          (void)c;
          bindings->erase(name);
        }
        return false;
      }
    } else if (!(t.constant() == fact[i])) {
      for (auto& [name, c] : added) {
        (void)c;
        bindings->erase(name);
      }
      return false;
    }
  }
  return true;
}

Fact Instantiate(const Literal& lit, const Bindings& bindings) {
  Fact fact;
  fact.reserve(lit.terms.size());
  for (const Term& t : lit.terms) {
    if (t.is_var()) {
      fact.push_back(bindings.at(t.var_name()));
    } else {
      fact.push_back(t.constant());
    }
  }
  return fact;
}

const std::set<Fact>& FactsOf(const Database& db, const std::string& pred) {
  static const std::set<Fact> kEmpty;
  auto it = db.find(pred);
  return it == db.end() ? kEmpty : it->second;
}

// Evaluates one rule against `db`; for semi-naive evaluation, at least one
// positive body literal must match within `delta` (pass nullptr for naive).
void FireRule(const Rule& rule, const Database& db, const Database* delta,
              std::set<Fact>* out) {
  // Choose which positive literal is forced into the delta (all choices).
  std::vector<size_t> positive_positions;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (!rule.body[i].negated) positive_positions.push_back(i);
  }

  // Recursive join over body literals.
  auto join = [&](auto&& self, size_t idx, Bindings& bindings,
                  size_t delta_pos) -> void {
    if (idx == rule.body.size()) {
      out->insert(Instantiate(rule.head, bindings));
      return;
    }
    const Literal& lit = rule.body[idx];
    if (lit.negated) {
      Fact probe = Instantiate(lit, bindings);
      if (!FactsOf(db, lit.predicate).count(probe)) {
        self(self, idx + 1, bindings, delta_pos);
      }
      return;
    }
    const std::set<Fact>& source =
        (delta != nullptr && idx == delta_pos)
            ? FactsOf(*delta, lit.predicate)
            : FactsOf(db, lit.predicate);
    for (const Fact& fact : source) {
      Bindings saved = bindings;
      if (Match(lit, fact, &bindings)) {
        self(self, idx + 1, bindings, delta_pos);
      }
      bindings = std::move(saved);
    }
  };

  if (delta == nullptr) {
    Bindings bindings;
    join(join, 0, bindings, static_cast<size_t>(-1));
  } else {
    // Semi-naive: union over choices of the delta literal.
    for (size_t pos : positive_positions) {
      Bindings bindings;
      join(join, 0, bindings, pos);
    }
    if (positive_positions.empty()) {
      Bindings bindings;
      join(join, 0, bindings, static_cast<size_t>(-1));
    }
  }
}

size_t TotalSize(const Database& db) {
  size_t n = 0;
  for (const auto& [p, facts] : db) {
    (void)p;
    n += facts.size();
  }
  return n;
}

}  // namespace

Result<Database> Evaluate(const Program& program, EvalStrategy strategy) {
  LOGRES_ASSIGN_OR_RETURN(auto strata, Stratify(program));
  int max_stratum = 0;
  for (const auto& [p, s] : strata) {
    (void)p;
    max_stratum = std::max(max_stratum, s);
  }

  Database db = program.edb();
  for (int s = 0; s <= max_stratum; ++s) {
    // Injection sites matching the eval/algres naming (datalog.stratum at
    // each stratum boundary, datalog.step at each fixpoint iteration), so
    // fault-injection tests cover the baseline engine too.
    LOGRES_FAILPOINT("datalog.stratum");
    std::vector<const Rule*> stratum_rules;
    for (const Rule& rule : program.rules()) {
      if (strata.at(rule.head.predicate) == s) stratum_rules.push_back(&rule);
    }
    if (stratum_rules.empty()) continue;

    if (strategy == EvalStrategy::kNaive) {
      for (;;) {
        LOGRES_FAILPOINT("datalog.step");
        size_t before = TotalSize(db);
        for (const Rule* rule : stratum_rules) {
          std::set<Fact> produced;
          FireRule(*rule, db, nullptr, &produced);
          auto& target = db[rule->head.predicate];
          target.insert(produced.begin(), produced.end());
        }
        if (TotalSize(db) == before) break;
      }
    } else {
      // Semi-naive: seed delta with everything currently visible to the
      // stratum, iterate with delta-restricted joins.
      Database delta = db;
      for (;;) {
        LOGRES_FAILPOINT("datalog.step");
        Database next_delta;
        for (const Rule* rule : stratum_rules) {
          std::set<Fact> produced;
          FireRule(*rule, db, &delta, &produced);
          for (const Fact& f : produced) {
            if (!db[rule->head.predicate].count(f)) {
              next_delta[rule->head.predicate].insert(f);
            }
          }
        }
        if (TotalSize(next_delta) == 0) break;
        for (auto& [p, facts] : next_delta) {
          db[p].insert(facts.begin(), facts.end());
        }
        delta = std::move(next_delta);
      }
    }
  }
  return db;
}

Result<std::set<Fact>> Query(const Database& db, const Literal& query) {
  if (query.negated) {
    return Status::InvalidArgument("cannot query a negated literal");
  }
  std::set<Fact> out;
  for (const Fact& fact : FactsOf(db, query.predicate)) {
    Bindings bindings;
    if (Match(query, fact, &bindings)) out.insert(fact);
  }
  return out;
}

}  // namespace logres::datalog
