#include "datalog/datalog.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <queue>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "util/failpoint.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace logres::datalog {

std::string Constant::ToString() const {
  if (is_int()) return std::to_string(int_value());
  return sym_value();
}

std::string Term::ToString() const {
  if (is_var()) return var_name();
  return constant().ToString();
}

std::string Literal::ToString() const {
  std::string out = negated ? "not " : "";
  out += predicate;
  out += "(";
  out += JoinMapped(terms, ", ", [](const Term& t) { return t.ToString(); });
  out += ")";
  return out;
}

std::string Rule::ToString() const {
  return StrCat(head.ToString(), " :- ",
                JoinMapped(body, ", ",
                           [](const Literal& l) { return l.ToString(); }),
                ".");
}

Status Program::AddRule(Rule rule) {
  if (rule.head.negated) {
    return Status::InvalidArgument(
        StrCat("flat Datalog forbids negated heads: ", rule.ToString()));
  }
  // Safety: every head variable and every variable in a negated body
  // literal must occur in some positive body literal.
  std::set<std::string> positive_vars;
  for (const Literal& lit : rule.body) {
    if (lit.negated) continue;
    for (const Term& t : lit.terms) {
      if (t.is_var()) positive_vars.insert(t.var_name());
    }
  }
  auto check = [&](const Literal& lit, const char* where) -> Status {
    for (const Term& t : lit.terms) {
      if (t.is_var() && !positive_vars.count(t.var_name())) {
        return Status::UnsafeRule(
            StrCat("variable ", t.var_name(), " in ", where,
                   " not bound by a positive body literal: ",
                   rule.ToString()));
      }
    }
    return Status::OK();
  };
  LOGRES_RETURN_NOT_OK(check(rule.head, "head"));
  for (const Literal& lit : rule.body) {
    if (lit.negated) LOGRES_RETURN_NOT_OK(check(lit, "negated literal"));
  }
  // Arity consistency.
  auto note_arity = [&](const Literal& lit) -> Status {
    auto [it, inserted] = arity_.emplace(lit.predicate, lit.terms.size());
    if (!inserted && it->second != lit.terms.size()) {
      return Status::InvalidArgument(
          StrCat("predicate ", lit.predicate, " used with arities ",
                 it->second, " and ", lit.terms.size()));
    }
    return Status::OK();
  };
  LOGRES_RETURN_NOT_OK(note_arity(rule.head));
  for (const Literal& lit : rule.body) LOGRES_RETURN_NOT_OK(note_arity(lit));
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Status Program::AddFact(const std::string& predicate, Fact fact) {
  auto [it, inserted] = arity_.emplace(predicate, fact.size());
  if (!inserted && it->second != fact.size()) {
    return Status::InvalidArgument(
        StrCat("predicate ", predicate, " used with arities ", it->second,
               " and ", fact.size()));
  }
  edb_[predicate].insert(std::move(fact));
  return Status::OK();
}

Result<std::map<std::string, int>> Stratify(const Program& program) {
  // Build the dependency graph: head depends on each body predicate,
  // marked "negative" when the body literal is negated.
  struct Edge {
    std::string from;
    bool negative;
  };
  std::map<std::string, std::vector<Edge>> deps;  // head -> body deps
  std::set<std::string> preds;
  for (const auto& [p, facts] : program.edb()) {
    (void)facts;
    preds.insert(p);
  }
  for (const Rule& rule : program.rules()) {
    preds.insert(rule.head.predicate);
    for (const Literal& lit : rule.body) {
      preds.insert(lit.predicate);
      deps[rule.head.predicate].push_back(Edge{lit.predicate, lit.negated});
    }
  }
  std::map<std::string, int> stratum;
  for (const auto& p : preds) stratum[p] = 0;
  // Bellman-Ford style relaxation: stratum(head) >= stratum(body),
  // strictly greater across negative edges. A stratum exceeding the number
  // of predicates implies a cycle through negation.
  const int limit = static_cast<int>(preds.size()) + 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [head, edges] : deps) {
      for (const Edge& e : edges) {
        int required = stratum[e.from] + (e.negative ? 1 : 0);
        if (stratum[head] < required) {
          stratum[head] = required;
          if (stratum[head] > limit) {
            return Status::Inconsistent(
                StrCat("program is not stratified: cycle through negation "
                       "involving predicate ",
                       head));
          }
          changed = true;
        }
      }
    }
  }
  return stratum;
}

namespace {

using Bindings = std::map<std::string, Constant>;

// Attempts to extend `bindings` so that `lit` (positive) matches `fact`.
// Names of newly bound variables are appended to `trail` on success, so
// the caller undoes them after exploring the extension (no map copy); on
// failure the bindings are rolled back here and the trail is untouched.
bool Match(const Literal& lit, const Fact& fact, Bindings* bindings,
           std::vector<std::string>* trail) {
  if (lit.terms.size() != fact.size()) return false;
  size_t mark = trail->size();
  for (size_t i = 0; i < lit.terms.size(); ++i) {
    const Term& t = lit.terms[i];
    bool ok;
    if (t.is_var()) {
      auto [it, inserted] = bindings->emplace(t.var_name(), fact[i]);
      if (inserted) trail->push_back(t.var_name());
      ok = inserted || it->second == fact[i];
    } else {
      ok = t.constant() == fact[i];
    }
    if (!ok) {
      while (trail->size() > mark) {
        bindings->erase(trail->back());
        trail->pop_back();
      }
      return false;
    }
  }
  return true;
}

Fact Instantiate(const Literal& lit, const Bindings& bindings) {
  Fact fact;
  fact.reserve(lit.terms.size());
  for (const Term& t : lit.terms) {
    if (t.is_var()) {
      fact.push_back(bindings.at(t.var_name()));
    } else {
      fact.push_back(t.constant());
    }
  }
  return fact;
}

const std::set<Fact>& FactsOf(const Database& db, const std::string& pred) {
  static const std::set<Fact> kEmpty;
  auto it = db.find(pred);
  return it == db.end() ? kEmpty : it->second;
}

// Lazily built hash indexes over `db`: (predicate, argument position) ->
// multimap from the constant at that position to the fact. Fact pointers
// stay valid under db insertion (std::set nodes are stable), but a stale
// index misses new facts — the evaluation loop invalidates a predicate's
// indexes whenever it inserts into that predicate. Lazy builds are
// serialized by a shared mutex so parallel delta tasks can probe one
// shared cache; std::map node stability keeps the returned references
// valid while other keys are built. Invalidate runs coordinator-only,
// between rounds.
class IndexCache {
 public:
  explicit IndexCache(const Database& db) : db_(db) {}

  using PositionIndex =
      std::unordered_multimap<Constant, const Fact*, ConstantHash>;

  const PositionIndex& At(const std::string& pred, size_t pos) {
    auto key = std::make_pair(pred, pos);
    {
      std::shared_lock lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    std::unique_lock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;  // raced build by a peer
    PositionIndex index;
    for (const Fact& f : FactsOf(db_, pred)) {
      if (pos < f.size()) index.emplace(f[pos], &f);
    }
    return cache_.emplace(std::move(key), std::move(index)).first->second;
  }

  void Invalidate(const std::string& pred) {
    std::unique_lock lock(mu_);
    auto it = cache_.lower_bound({pred, 0});
    while (it != cache_.end() && it->first.first == pred) {
      it = cache_.erase(it);
    }
  }

 private:
  const Database& db_;
  std::shared_mutex mu_;
  std::map<std::pair<std::string, size_t>, PositionIndex> cache_;
};

// Bound-first execution order for a rule body: negated literals run as
// soon as they are ground (each is then a single lookup that prunes the
// join early — rule safety makes them ground at the latest once every
// positive literal has run), and positive literals go most-bound-first
// with the delta literal always in front. Order cannot change the result:
// every literal still sees the same database, matching is exact constant
// equality, and all satisfying valuations are enumerated either way.
std::vector<size_t> ScheduleLiterals(const Rule& rule, size_t delta_pos) {
  const size_t n = rule.body.size();
  std::vector<bool> done(n, false);
  std::set<std::string> bound;
  std::vector<size_t> order;
  order.reserve(n);
  auto is_ground = [&](const Literal& lit) {
    for (const Term& t : lit.terms) {
      if (t.is_var() && !bound.count(t.var_name())) return false;
    }
    return true;
  };
  while (order.size() < n) {
    bool scheduled = false;
    for (size_t i = 0; i < n && !scheduled; ++i) {
      if (!done[i] && rule.body[i].negated && is_ground(rule.body[i])) {
        order.push_back(i);
        done[i] = true;
        scheduled = true;
      }
    }
    if (scheduled) continue;
    size_t best = n;
    int best_score = -1;
    for (size_t i = 0; i < n; ++i) {
      if (done[i] || rule.body[i].negated) continue;
      int score = (i == delta_pos) ? 1000 : 0;  // small frontier first
      for (const Term& t : rule.body[i].terms) {
        if (!t.is_var() || bound.count(t.var_name())) ++score;
      }
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == n) break;  // unreachable for safe rules
    order.push_back(best);
    done[best] = true;
    for (const Term& t : rule.body[best].terms) {
      if (t.is_var()) bound.insert(t.var_name());
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!done[i]) order.push_back(i);
  }
  return order;
}

constexpr size_t kAllChoices = static_cast<size_t>(-1);

// Evaluates one rule against `db`; for semi-naive evaluation, at least one
// positive body literal must match within `delta` (pass nullptr for
// naive). Positive literals with a bound position probe `indexes` instead
// of scanning their whole relation.
//
// `only_pos` / `delta_chunk` let the parallel evaluator split one rule's
// semi-naive work into tasks: only_pos fires a single delta-literal choice
// (instead of the union over all of them), and delta_chunk restricts the
// delta literal's scan to the facts with ordinal in [first, second). Each
// body valuation consumes exactly one delta fact at the chosen position,
// so partitioning the delta facts partitions the valuations — the union of
// the chunks' outputs equals the unchunked output, whatever depth the
// schedule places the delta literal at.
void FireRule(const Rule& rule, const Database& db, const Database* delta,
              IndexCache* indexes, std::set<Fact>* out,
              size_t only_pos = kAllChoices,
              const std::pair<size_t, size_t>* delta_chunk = nullptr) {
  // Choose which positive literal is forced into the delta (all choices).
  std::vector<size_t> positive_positions;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (!rule.body[i].negated) positive_positions.push_back(i);
  }

  // Recursive join over body literals, in schedule order.
  std::vector<size_t> order;
  std::vector<std::string> trail;
  auto join = [&](auto&& self, size_t k, Bindings& bindings,
                  size_t delta_pos) -> void {
    if (k == order.size()) {
      out->insert(Instantiate(rule.head, bindings));
      return;
    }
    size_t idx = order[k];
    const Literal& lit = rule.body[idx];
    if (lit.negated) {
      Fact probe = Instantiate(lit, bindings);
      if (!FactsOf(db, lit.predicate).count(probe)) {
        self(self, k + 1, bindings, delta_pos);
      }
      return;
    }
    bool from_delta = delta != nullptr && idx == delta_pos;
    auto try_fact = [&](const Fact& fact) {
      size_t mark = trail.size();
      if (Match(lit, fact, &bindings, &trail)) {
        self(self, k + 1, bindings, delta_pos);
      }
      while (trail.size() > mark) {
        bindings.erase(trail.back());
        trail.pop_back();
      }
    };
    if (!from_delta && indexes != nullptr) {
      // Probe the index of the first bound position, if any.
      for (size_t i = 0; i < lit.terms.size(); ++i) {
        const Term& t = lit.terms[i];
        const Constant* key = nullptr;
        if (!t.is_var()) {
          key = &t.constant();
        } else if (auto it = bindings.find(t.var_name());
                   it != bindings.end()) {
          key = &it->second;
        }
        if (key == nullptr) continue;
        auto [lo, hi] = indexes->At(lit.predicate, i).equal_range(*key);
        for (auto it = lo; it != hi; ++it) try_fact(*it->second);
        return;
      }
    }
    const std::set<Fact>& source = from_delta
                                       ? FactsOf(*delta, lit.predicate)
                                       : FactsOf(db, lit.predicate);
    size_t ordinal = 0;
    for (const Fact& fact : source) {
      if (from_delta && delta_chunk != nullptr) {
        size_t i = ordinal++;
        if (i < delta_chunk->first) continue;
        if (i >= delta_chunk->second) break;
      }
      try_fact(fact);
    }
  };

  if (delta == nullptr) {
    order = ScheduleLiterals(rule, static_cast<size_t>(-1));
    Bindings bindings;
    join(join, 0, bindings, static_cast<size_t>(-1));
  } else if (only_pos != kAllChoices) {
    // One task of a parallel round: a single delta-literal choice.
    order = ScheduleLiterals(rule, only_pos);
    Bindings bindings;
    join(join, 0, bindings, only_pos);
  } else {
    // Semi-naive: union over choices of the delta literal, skipping
    // choices whose frontier relation is empty (the join is empty then).
    for (size_t pos : positive_positions) {
      if (FactsOf(*delta, rule.body[pos].predicate).empty()) continue;
      order = ScheduleLiterals(rule, pos);
      Bindings bindings;
      join(join, 0, bindings, pos);
    }
    if (positive_positions.empty()) {
      order = ScheduleLiterals(rule, static_cast<size_t>(-1));
      Bindings bindings;
      join(join, 0, bindings, static_cast<size_t>(-1));
    }
  }
}

size_t TotalSize(const Database& db) {
  size_t n = 0;
  for (const auto& [p, facts] : db) {
    (void)p;
    n += facts.size();
  }
  return n;
}

namespace {

// Approximate payload footprint; only computed when a byte budget is set.
size_t ApproxBytesOf(const Database& db) {
  size_t bytes = 0;
  for (const auto& [p, facts] : db) {
    bytes += p.capacity();
    for (const Fact& fact : facts) {
      bytes += 32 + fact.capacity() * sizeof(Constant);
      for (const Constant& c : fact) {
        if (!c.is_int()) bytes += c.sym_value().capacity();
      }
    }
  }
  return bytes;
}

Status CheckGrowth(const ResourceGovernor& governor, const Database& db) {
  LOGRES_RETURN_NOT_OK(governor.CheckFacts(TotalSize(db)));
  if (governor.wants_bytes()) {
    LOGRES_RETURN_NOT_OK(governor.CheckBytes(ApproxBytesOf(db)));
  }
  return Status::OK();
}

}  // namespace

}  // namespace

Result<Database> Evaluate(const Program& program, const EvalOptions& options) {
  LOGRES_ASSIGN_OR_RETURN(auto strata, Stratify(program));
  int max_stratum = 0;
  for (const auto& [p, s] : strata) {
    (void)p;
    max_stratum = std::max(max_stratum, s);
  }

  ResourceGovernor governor(options.budget);
  // Naive evaluation stays serial even when threads were requested: its
  // rounds apply rules cumulatively in order (rule 2 sees rule 1's facts
  // from the same round), so per-rule parallel tasks would change the
  // round structure — and with it the step count the budget is charged.
  size_t threads = options.strategy == EvalStrategy::kSemiNaive
                       ? ThreadPool::Resolve(options.num_threads)
                       : 1;
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool_storage.emplace(threads);
    pool = &*pool_storage;
  }

  Database db = program.edb();
  IndexCache indexes(db);
  for (int s = 0; s <= max_stratum; ++s) {
    LOGRES_RETURN_NOT_OK(governor.CheckInterrupt());
    // Injection sites matching the eval/algres naming (datalog.stratum at
    // each stratum boundary, datalog.step at each fixpoint iteration), so
    // fault-injection tests cover the baseline engine too.
    LOGRES_FAILPOINT("datalog.stratum");
    std::vector<const Rule*> stratum_rules;
    for (const Rule& rule : program.rules()) {
      if (strata.at(rule.head.predicate) == s) stratum_rules.push_back(&rule);
    }
    if (stratum_rules.empty()) continue;

    if (options.strategy == EvalStrategy::kNaive) {
      for (;;) {
        LOGRES_RETURN_NOT_OK(governor.CheckStep());
        LOGRES_FAILPOINT("datalog.step");
        size_t before = TotalSize(db);
        for (const Rule* rule : stratum_rules) {
          std::set<Fact> produced;
          FireRule(*rule, db, nullptr, &indexes, &produced);
          auto& target = db[rule->head.predicate];
          size_t had = target.size();
          target.insert(produced.begin(), produced.end());
          if (target.size() != had) indexes.Invalidate(rule->head.predicate);
        }
        if (TotalSize(db) == before) break;
        LOGRES_RETURN_NOT_OK(CheckGrowth(governor, db));
      }
    } else {
      // Semi-naive: the first round's frontier is everything currently
      // visible to the stratum — read straight from `db` instead of
      // copying the whole database; later rounds restrict joins to the
      // previous round's (small) delta. FireRule only reads the frontier,
      // so results and round counts are identical to the copying seed.
      Database delta;
      const Database* frontier = &db;
      for (;;) {
        LOGRES_RETURN_NOT_OK(governor.CheckStep());
        LOGRES_FAILPOINT("datalog.step");
        Database next_delta;
        if (pool == nullptr) {
          for (const Rule* rule : stratum_rules) {
            std::set<Fact> produced;
            FireRule(*rule, db, frontier, &indexes, &produced);
            for (const Fact& f : produced) {
              if (!db[rule->head.predicate].count(f)) {
                next_delta[rule->head.predicate].insert(f);
              }
            }
          }
        } else {
          // One task per (rule, delta-literal choice, contiguous chunk of
          // that choice's frontier). Outputs are sets, so the merge below
          // is order-insensitive; iterating specs in build order merely
          // keeps the pass deterministic to read. Rules without positive
          // literals run their (delta-independent) full join as one task.
          struct RoundTask {
            const Rule* rule = nullptr;
            size_t only_pos = kAllChoices;
            std::pair<size_t, size_t> chunk{0, 0};
            bool chunked = false;
          };
          std::vector<RoundTask> specs;
          for (const Rule* rule : stratum_rules) {
            std::vector<size_t> positive_positions;
            for (size_t i = 0; i < rule->body.size(); ++i) {
              if (!rule->body[i].negated) positive_positions.push_back(i);
            }
            if (positive_positions.empty()) {
              specs.push_back(RoundTask{rule});
              continue;
            }
            for (size_t pos : positive_positions) {
              size_t frontier_size =
                  FactsOf(*frontier, rule->body[pos].predicate).size();
              if (frontier_size == 0) continue;
              constexpr size_t kMinChunkFacts = 4;
              size_t chunks = std::min(
                  pool->num_threads() * 2,
                  std::max<size_t>(1, frontier_size / kMinChunkFacts));
              size_t base = frontier_size / chunks;
              size_t extra = frontier_size % chunks;
              size_t lo = 0;
              for (size_t c = 0; c < chunks; ++c) {
                size_t len = base + (c < extra ? 1 : 0);
                specs.push_back(
                    RoundTask{rule, pos, {lo, lo + len}, true});
                lo += len;
              }
            }
          }
          std::vector<std::set<Fact>> produced(specs.size());
          std::vector<ThreadPool::Task> tasks;
          tasks.reserve(specs.size());
          for (size_t i = 0; i < specs.size(); ++i) {
            tasks.push_back([&, i]() -> Status {
              const RoundTask& spec = specs[i];
              if (spec.only_pos == kAllChoices && !spec.chunked) {
                FireRule(*spec.rule, db, nullptr, &indexes, &produced[i]);
              } else {
                FireRule(*spec.rule, db, frontier, &indexes, &produced[i],
                         spec.only_pos, spec.chunked ? &spec.chunk : nullptr);
              }
              return Status::OK();
            });
          }
          LOGRES_RETURN_NOT_OK(
              pool->Run(std::move(tasks), options.budget.cancel));
          for (size_t i = 0; i < specs.size(); ++i) {
            const std::string& head = specs[i].rule->head.predicate;
            for (const Fact& f : produced[i]) {
              if (!FactsOf(db, head).count(f)) next_delta[head].insert(f);
            }
          }
        }
        if (TotalSize(next_delta) == 0) break;
        for (auto& [p, facts] : next_delta) {
          db[p].insert(facts.begin(), facts.end());
          indexes.Invalidate(p);
        }
        LOGRES_RETURN_NOT_OK(CheckGrowth(governor, db));
        delta = std::move(next_delta);
        frontier = &delta;
      }
    }
  }
  return db;
}

Result<Database> Evaluate(const Program& program, EvalStrategy strategy) {
  EvalOptions options;
  options.strategy = strategy;
  return Evaluate(program, options);
}

Result<std::set<Fact>> Query(const Database& db, const Literal& query) {
  if (query.negated) {
    return Status::InvalidArgument("cannot query a negated literal");
  }
  std::set<Fact> out;
  std::vector<std::string> trail;
  for (const Fact& fact : FactsOf(db, query.predicate)) {
    Bindings bindings;
    trail.clear();
    if (Match(query, fact, &bindings, &trail)) out.insert(fact);
  }
  return out;
}

namespace {

// ---- Goal-directed rewrite (positional twin of core/magic.cc) ------------

constexpr char kMagicPredPrefix[] = "$magic$";

// Demand pattern of a derived predicate: the argument positions whose
// values flow from the goal's constants. Merging two patterns intersects
// them (one adornment per predicate); an empty intersection weakens to
// full demand — the predicate's rules then run unguarded.
struct PositionalAdornment {
  bool full = false;
  std::set<size_t> bound;
};

bool MergePositional(std::map<std::string, PositionalAdornment>* adorn,
                     const std::string& pred,
                     const std::set<size_t>& occurrence_bound) {
  auto it = adorn->find(pred);
  if (it == adorn->end()) {
    PositionalAdornment a;
    if (occurrence_bound.empty()) {
      a.full = true;
    } else {
      a.bound = occurrence_bound;
    }
    adorn->emplace(pred, std::move(a));
    return true;
  }
  PositionalAdornment& a = it->second;
  if (a.full) return false;
  std::set<size_t> inter;
  std::set_intersection(a.bound.begin(), a.bound.end(),
                        occurrence_bound.begin(), occurrence_bound.end(),
                        std::inserter(inter, inter.begin()));
  if (inter == a.bound) return false;
  if (inter.empty()) {
    a.full = true;
    a.bound.clear();
  } else {
    a.bound = std::move(inter);
  }
  return true;
}

std::set<size_t> BoundPositions(const Literal& lit,
                                const std::set<std::string>& bound_vars) {
  std::set<size_t> out;
  for (size_t i = 0; i < lit.terms.size(); ++i) {
    const Term& t = lit.terms[i];
    if (!t.is_var() || bound_vars.count(t.var_name()) > 0) out.insert(i);
  }
  return out;
}

Literal MagicLiteralOf(const Literal& occurrence,
                       const PositionalAdornment& a) {
  Literal out;
  out.predicate = kMagicPredPrefix + occurrence.predicate;
  for (size_t pos : a.bound) out.terms.push_back(occurrence.terms[pos]);
  return out;
}

struct DatalogRewrite {
  bool applied = false;
  std::string fallback_reason;
  Program program;  // guarded + magic rules, edb + seed facts
  size_t magic_rule_count = 0;
};

DatalogRewrite RewriteForGoal(const Program& program, const Literal& goal) {
  DatalogRewrite out;
  auto fallback = [](std::string reason) {
    DatalogRewrite r;
    r.fallback_reason = std::move(reason);
    return r;
  };
  if (Result<std::map<std::string, int>> strata = Stratify(program);
      !strata.ok()) {
    return fallback("program is not stratified");
  }

  std::set<std::string> idb;
  for (const Rule& rule : program.rules()) idb.insert(rule.head.predicate);

  // Adornment fixpoint over the goal (a virtual headless rule) and every
  // demanded rule, walking bodies in the engine's own bound-first
  // schedule. Rule safety (AddRule) already guarantees negated literals
  // are ground once the scheduled positives before them have run, so —
  // unlike the LOGRES rewrite — no active-domain gate is needed.
  std::map<std::string, PositionalAdornment> adorn;
  auto walk = [&](const Literal* head,
                  const PositionalAdornment* head_adorn,
                  const std::vector<Literal>& body) -> bool {
    bool changed = false;
    std::set<std::string> bound;
    if (head != nullptr && head_adorn != nullptr && !head_adorn->full) {
      for (size_t pos : head_adorn->bound) {
        if (head->terms[pos].is_var()) {
          bound.insert(head->terms[pos].var_name());
        }
      }
    }
    Rule scratch;
    scratch.body = body;
    for (size_t i : ScheduleLiterals(scratch, kAllChoices)) {
      const Literal& lit = body[i];
      if (idb.count(lit.predicate) > 0) {
        changed |=
            MergePositional(&adorn, lit.predicate, BoundPositions(lit, bound));
      }
      if (!lit.negated) {
        for (const Term& t : lit.terms) {
          if (t.is_var()) bound.insert(t.var_name());
        }
      }
    }
    return changed;
  };
  std::vector<Literal> goal_body = {goal};
  for (bool changed = true; changed;) {
    changed = walk(nullptr, nullptr, goal_body);
    for (const Rule& rule : program.rules()) {
      auto it = adorn.find(rule.head.predicate);
      if (it == adorn.end()) continue;
      PositionalAdornment head_adorn = it->second;  // copy: walk mutates
      changed |= walk(&rule.head, &head_adorn, rule.body);
    }
  }

  size_t dropped = 0;
  for (const Rule& rule : program.rules()) {
    if (adorn.count(rule.head.predicate) == 0) ++dropped;
  }
  bool any_magic = false;
  for (const auto& [pred, a] : adorn) any_magic |= !a.full;
  if (!any_magic && dropped == 0) {
    return fallback(
        "goal does not restrict evaluation "
        "(no bound argument reaches a derived predicate)");
  }

  // Guarded rules, magic rules, seed facts.
  std::set<std::string> rule_keys;
  std::vector<Rule> magic_rules;
  std::set<std::pair<std::string, Fact>> seeds;
  auto emit_demand = [&](const Literal* head,
                         const PositionalAdornment* head_adorn,
                         const std::vector<Literal>& body,
                         const std::optional<Literal>& guard) {
    std::set<std::string> bound;
    if (head != nullptr && head_adorn != nullptr && !head_adorn->full) {
      for (size_t pos : head_adorn->bound) {
        if (head->terms[pos].is_var()) {
          bound.insert(head->terms[pos].var_name());
        }
      }
    }
    Rule scratch;
    scratch.body = body;
    std::vector<Literal> prefix;
    for (size_t i : ScheduleLiterals(scratch, kAllChoices)) {
      const Literal& lit = body[i];
      auto it = adorn.find(lit.predicate);
      if (it != adorn.end() && !it->second.full) {
        Literal magic_head = MagicLiteralOf(lit, it->second);
        std::vector<Literal> magic_body;
        if (guard.has_value()) magic_body.push_back(*guard);
        magic_body.insert(magic_body.end(), prefix.begin(), prefix.end());
        if (magic_body.empty()) {
          // Every demanded position is a constant: a seed fact.
          Fact seed;
          for (const Term& t : magic_head.terms) {
            seed.push_back(t.constant());
          }
          seeds.emplace(magic_head.predicate, std::move(seed));
        } else {
          Rule m;
          m.head = std::move(magic_head);
          m.body = std::move(magic_body);
          bool tautology = m.body.size() == 1 &&
                           m.body[0].ToString() == m.head.ToString();
          if (!tautology && rule_keys.insert(m.ToString()).second) {
            magic_rules.push_back(std::move(m));
          }
        }
      }
      prefix.push_back(lit);
      if (!lit.negated) {
        for (const Term& t : lit.terms) {
          if (t.is_var()) bound.insert(t.var_name());
        }
      }
    }
  };

  std::vector<Rule> guarded;
  emit_demand(nullptr, nullptr, goal_body, std::nullopt);
  for (const Rule& rule : program.rules()) {
    auto it = adorn.find(rule.head.predicate);
    if (it == adorn.end()) continue;
    const PositionalAdornment& a = it->second;
    Rule g = rule;
    std::optional<Literal> guard;
    if (!a.full) {
      guard = MagicLiteralOf(rule.head, a);
      g.body.insert(g.body.begin(), *guard);
    }
    guarded.push_back(std::move(g));
    emit_demand(&rule.head, &a, rule.body, guard);
  }

  Program rewritten;
  for (Rule& rule : guarded) {
    if (Status s = rewritten.AddRule(std::move(rule)); !s.ok()) {
      return fallback(StrCat("rewritten rule rejected: ", s.message()));
    }
  }
  for (Rule& rule : magic_rules) {
    if (Status s = rewritten.AddRule(std::move(rule)); !s.ok()) {
      return fallback(StrCat("magic rule rejected: ", s.message()));
    }
  }
  for (const auto& [pred, facts] : program.edb()) {
    for (const Fact& fact : facts) {
      if (Status s = rewritten.AddFact(pred, fact); !s.ok()) {
        return fallback(StrCat("edb fact rejected: ", s.message()));
      }
    }
  }
  for (const auto& [pred, fact] : seeds) {
    if (Status s = rewritten.AddFact(pred, fact); !s.ok()) {
      return fallback(StrCat("seed fact rejected: ", s.message()));
    }
  }

  if (Result<std::map<std::string, int>> strata = Stratify(rewritten);
      !strata.ok()) {
    // Magic rules copy negated prefix literals, which can close a
    // negative cycle through the new demand predicates even though the
    // original program was stratified. Evaluating that would change
    // semantics — fall back to the whole program instead.
    return fallback("magic rewrite would lose stratification");
  }
  out.applied = true;
  out.program = std::move(rewritten);
  out.magic_rule_count = magic_rules.size();
  return out;
}

}  // namespace

Result<std::set<Fact>> Query(const Program& program, const Literal& goal,
                             const EvalOptions& options,
                             GoalDirectedInfo* info) {
  if (goal.negated) {
    return Status::InvalidArgument("cannot query a negated literal");
  }
  std::string fallback_reason;
  if (options.goal_directed) {
    DatalogRewrite rewrite = RewriteForGoal(program, goal);
    if (rewrite.applied) {
      LOGRES_ASSIGN_OR_RETURN(Database db,
                              Evaluate(rewrite.program, options));
      if (info != nullptr) {
        info->applied = true;
        info->magic_rules = rewrite.magic_rule_count;
        size_t edb_facts = 0;
        for (const auto& [pred, facts] : program.edb()) {
          edb_facts += facts.size();
        }
        size_t cone_facts = 0;
        info->demand_facts = 0;
        for (const auto& [pred, facts] : db) {
          if (pred.rfind(kMagicPredPrefix, 0) == 0) {
            info->demand_facts += facts.size();
          } else {
            cone_facts += facts.size();
          }
        }
        info->cone_fraction =
            edb_facts == 0
                ? 0.0
                : static_cast<double>(cone_facts) / edb_facts;
      }
      return Query(db, goal);
    }
    fallback_reason = std::move(rewrite.fallback_reason);
  }
  LOGRES_ASSIGN_OR_RETURN(Database db, Evaluate(program, options));
  if (info != nullptr) {
    info->applied = false;
    info->fallback_reason = std::move(fallback_reason);
  }
  return Query(db, goal);
}

}  // namespace logres::datalog
