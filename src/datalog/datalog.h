// A conventional flat Datalog engine — the baseline LOGRES is compared
// against.
//
// The paper positions LOGRES against "preceding proposals like LDL or
// NAIL!" (Section 3.2): flat, value-based Datalog with stratified negation
// and no objects, no complex terms, no invented values. This module
// implements exactly that comparator: first-order terms are constants or
// variables over a scalar universe, programs are evaluated bottom-up either
// naively or semi-naively, and negation is supported when the program is
// stratified.
//
// Benchmarks (B1/B2) run the same recursive workloads through this engine
// and through the LOGRES evaluator to measure what the typed
// object-oriented machinery costs — and the test suite cross-checks that
// both produce identical results on the flat fragment.

#ifndef LOGRES_DATALOG_DATALOG_H_
#define LOGRES_DATALOG_DATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "util/governor.h"
#include "util/status.h"

namespace logres::datalog {

using logres::Budget;
using logres::Result;
using logres::Status;

/// \brief A scalar constant: integer or symbol (interned string).
class Constant {
 public:
  Constant() : rep_(int64_t{0}) {}
  static Constant Int(int64_t i) { return Constant(rep_type(i)); }
  static Constant Sym(std::string s) {
    return Constant(rep_type(std::move(s)));
  }

  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  const std::string& sym_value() const { return std::get<std::string>(rep_); }

  std::string ToString() const;

  auto operator<=>(const Constant&) const = default;

 private:
  using rep_type = std::variant<int64_t, std::string>;
  explicit Constant(rep_type rep) : rep_(std::move(rep)) {}
  rep_type rep_;
};

/// \brief Hash functor for Constant, for the engine's hash-indexed access
/// paths (ints and symbols hash into one key space).
struct ConstantHash {
  size_t operator()(const Constant& c) const {
    if (c.is_int()) {
      return std::hash<int64_t>()(c.int_value()) ^ 0x9e3779b97f4a7c15ull;
    }
    return std::hash<std::string>()(c.sym_value());
  }
};

/// \brief A term: a constant or a variable (identified by name).
class Term {
 public:
  static Term Var(std::string name) {
    Term t;
    t.var_ = std::move(name);
    return t;
  }
  static Term Const(Constant c) {
    Term t;
    t.const_ = std::move(c);
    return t;
  }
  static Term Int(int64_t i) { return Const(Constant::Int(i)); }
  static Term Sym(std::string s) { return Const(Constant::Sym(std::move(s))); }

  bool is_var() const { return var_.has_value(); }
  const std::string& var_name() const { return *var_; }
  const Constant& constant() const { return *const_; }

  std::string ToString() const;

 private:
  std::optional<std::string> var_;
  std::optional<Constant> const_;
};

/// \brief A literal: possibly negated predicate over terms.
struct Literal {
  std::string predicate;
  std::vector<Term> terms;
  bool negated = false;

  std::string ToString() const;
};

/// \brief A Horn rule with stratified negation: head :- body.
struct Rule {
  Literal head;  // must be positive
  std::vector<Literal> body;

  std::string ToString() const;
};

/// \brief A ground fact.
using Fact = std::vector<Constant>;

/// \brief A Datalog program: rules plus an extensional database.
class Program {
 public:
  /// \brief Adds a rule; rejects negated heads and unsafe rules (a head or
  /// negated-body variable that never occurs in a positive body literal).
  Status AddRule(Rule rule);

  /// \brief Adds a ground fact for \p predicate.
  Status AddFact(const std::string& predicate, Fact fact);

  const std::vector<Rule>& rules() const { return rules_; }
  const std::map<std::string, std::set<Fact>>& edb() const { return edb_; }

 private:
  std::vector<Rule> rules_;
  std::map<std::string, std::set<Fact>> edb_;
  std::map<std::string, size_t> arity_;
};

/// \brief All derived facts, keyed by predicate.
using Database = std::map<std::string, std::set<Fact>>;

enum class EvalStrategy { kNaive, kSemiNaive };

/// \brief Evaluation controls for the flat engine, mirroring the direct
/// evaluator's contract.
struct EvalOptions {
  EvalStrategy strategy = EvalStrategy::kSemiNaive;
  /// Worker threads for the semi-naive delta joins (1 = serial, 0 = one
  /// per hardware thread). The delta relation is partitioned into
  /// contiguous chunks per (rule, delta position); produced facts are
  /// sets, so the merged fixpoint — and the per-round frontier, hence the
  /// step count — is identical for every thread count. Naive evaluation
  /// stays serial (its rounds apply rules cumulatively in order).
  size_t num_threads = 1;
  /// Shared budget semantics with the other engines: step exhaustion is
  /// kDivergence (one step = one fixpoint round), deadline or fact-count
  /// breach is kResourceExhausted, cancellation is kCancelled.
  Budget budget;
  /// Goal-directed query evaluation: Query(program, goal, ...) rewrites
  /// the program with magic sets (positional twin of core/magic.h) so
  /// only the goal's demanded cone is evaluated. Falls back to
  /// whole-program evaluation — identical answers — whenever the rewrite
  /// cannot prove equivalence (e.g. it would lose stratification).
  bool goal_directed = true;
};

/// \brief Observability of one goal-directed query (mirrors the
/// magic-set fields of the direct evaluator's EvalStats).
struct GoalDirectedInfo {
  bool applied = false;
  std::string fallback_reason;  // set when !applied
  size_t magic_rules = 0;       // demand rules added by the rewrite
  size_t demand_facts = 0;      // $magic$ tuples derived (seeds included)
  double cone_fraction = 0;     // non-magic derived facts / edb facts
};

/// \brief Computes the minimal model (perfect model when negation occurs).
///
/// Negation requires the program to be stratified; otherwise an
/// Inconsistent status is returned. Strata are evaluated bottom-up, each
/// with the requested strategy.
Result<Database> Evaluate(const Program& program, const EvalOptions& options);

/// \brief Back-compat entry point: strategy only, default budget, serial.
Result<Database> Evaluate(const Program& program,
                          EvalStrategy strategy = EvalStrategy::kSemiNaive);

/// \brief Answers a single (possibly non-ground) query literal against a
/// materialized database: returns the matching facts.
Result<std::set<Fact>> Query(const Database& db, const Literal& query);

/// \brief Evaluates \p program as far as \p goal demands and returns the
/// goal's matching facts. With options.goal_directed (the default) and a
/// goal carrying at least one constant, the program is rewritten with
/// magic sets — guarded rules plus demand rules seeded from the goal's
/// constants, using the same bound-first literal schedule as evaluation
/// (ScheduleLiterals) for sideways information passing — so only the
/// demanded cone is computed. Answers are identical to evaluating the
/// whole program and filtering; the rewrite falls back to exactly that
/// (reason in info->fallback_reason) when it cannot prove equivalence.
/// Magic predicates never escape: the returned facts are the goal
/// predicate's only.
Result<std::set<Fact>> Query(const Program& program, const Literal& goal,
                             const EvalOptions& options,
                             GoalDirectedInfo* info = nullptr);

/// \brief Computes the predicate-dependency strata. Exposed for tests.
/// Returns, for each predicate, its stratum index; error if not stratified.
Result<std::map<std::string, int>> Stratify(const Program& program);

}  // namespace logres::datalog

#endif  // LOGRES_DATALOG_DATALOG_H_
